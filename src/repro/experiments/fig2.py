"""Experiment E1 / Figure 2: the §3.1 M-Lab NDT passive analysis.

Generates the synthetic stand-in for the paper's one-month NDT query
(9,984 flows, June 2023), applies the §3.1 filters, runs change-point
detection on the remaining flows' throughput series, and reports the
category breakdown plus -- our addition -- ground-truth validation of
the passive inference.

Paper-shape expectations: a large majority of flows is removed as
application-limited, receiver-limited, or cellular; only a small
residual fraction shows throughput level shifts, and some of those
shifts (policed flows) are not contention at all.
"""

from __future__ import annotations

from .. import viz
from ..ndt.filters import FlowCategory
from ..ndt.pipeline import run_pipeline
from ..ndt.synth import PopulationModel, SyntheticNdtGenerator
from ..units import to_mbps
from .runner import ExperimentResult, Stopwatch

#: The paper analysed 9,984 flows from June 2023.
PAPER_FLOW_COUNT = 9_984


def run(n_flows: int = PAPER_FLOW_COUNT, seed: int = 2023,
        min_relative_shift: float = 0.25,
        model: PopulationModel | None = None,
        workers: int | None = None) -> ExperimentResult:
    """Run the Figure 2 pipeline.

    ``workers`` fans the per-flow analysis out over processes
    (default: ``REPRO_WORKERS`` env var, then CPU count); results are
    identical for any value.
    """
    with Stopwatch() as watch:
        dataset = SyntheticNdtGenerator(model=model, seed=seed) \
            .generate(n_flows)
        result = run_pipeline(dataset,
                              min_relative_shift=min_relative_shift,
                              workers=workers)
        quality = result.detector_quality()

    rows = [{"category": name, "flows": count, "fraction": round(frac, 4)}
            for name, count, frac in result.summary_rows()]
    cdf_rows = [
        {"category": cat.value, "throughput_mbps": round(to_mbps(v), 3),
         "cdf": round(f, 4)}
        for cat in FlowCategory
        if result.counts.get(cat, 0) > 0
        for v, f in result.throughput_cdf(cat).points(max_points=100)
    ]

    parts = [
        f"Figure 2 reproduction: {n_flows} synthetic NDT flows "
        f"(seed={seed})",
        "",
        viz.table(
            [(r["category"], r["flows"], f"{r['fraction']:.1%}")
             for r in rows],
            header=("category", "flows", "fraction")),
        "",
        viz.bar_chart(
            [r["category"] for r in rows],
            [r["fraction"] for r in rows],
            title="Flow categorization (fractions)", fmt="{:.1%}"),
        "",
        "Ground-truth validation of 'level shift => contention' "
        "(synthetic only):",
        viz.table(
            [(k, f"{v:.3g}") for k, v in quality.items()],
            header=("measure", "value")),
    ]

    metrics = {
        "n_flows": float(n_flows),
        "fraction_filtered": result.fraction_filtered,
        "fraction_app_limited": result.fraction(FlowCategory.APP_LIMITED),
        "fraction_rwnd_limited": result.fraction(FlowCategory.RWND_LIMITED),
        "fraction_cellular": result.fraction(FlowCategory.CELLULAR),
        "fraction_remaining": result.fraction(FlowCategory.REMAINING),
        "fraction_possible_contention":
            result.fraction_possible_contention,
        "detector_precision": quality["precision"],
        "detector_recall": quality["recall"],
    }
    return ExperimentResult(
        experiment="fig2",
        text="\n".join(parts),
        metrics=metrics,
        tables={"categories": rows, "throughput_cdfs": cdf_rows},
        params={"n_flows": n_flows, "seed": seed,
                "min_relative_shift": min_relative_shift,
                "workers": workers},
        elapsed_s=watch.elapsed,
    )
