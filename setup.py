"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
PEP 517 editable installs (which require bdist_wheel) fail.  This shim
lets ``pip install -e .`` take the legacy ``setup.py develop`` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'How I Learned to Stop Worrying About CCA "
        "Contention' (HotNets '23)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
