"""Shared benchmark helpers.

Simulation benchmarks are single-shot (``rounds=1``): the workload is a
deterministic discrete-event run, so repetition only measures the same
events again.  Microbenchmarks (``bench_perf_*``) use normal
pytest-benchmark repetition.

Set ``REPRO_BENCH_SCALE=small`` to shrink the figure-scale benchmarks
(useful for CI smoke runs); the default reproduces the paper-scale
parameters.
"""

import os

import pytest


def once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "full")
