"""Experiment E8: offered load vs allocation on access links (§2.2).

"inter-flow contention can affect bandwidth allocation only if a
user's applications simultaneously offer enough load to exceed the
access link's capacity.  Otherwise, each application would simply
receive a bandwidth allocation corresponding to its offered load."

Setup: a home access link carrying a rate-limited application mix
(video + gaming-style CBR + short flows) whose combined offered load
sweeps from well under to over the link capacity.  We measure each
application's allocation error vs its offered load.  Expected shape:
below saturation the allocation equals offered load (error ~ 0, CCA
irrelevant); only past saturation do allocations diverge.
"""

from __future__ import annotations

import numpy as np

from .. import viz
from ..sim.engine import Simulator
from ..sim.network import dumbbell
from ..traffic.cbr import CbrSource
from ..units import mbps, ms, to_mbps
from .runner import ExperimentResult, Stopwatch


def _measure(load_fraction: float, rate_mbps: float, rtt_ms_val: float,
             duration: float, n_apps: int) -> dict:
    sim = Simulator()
    path = dumbbell(sim, mbps(rate_mbps), ms(rtt_ms_val))
    # Application demands: a skewed mix summing to load_fraction of
    # capacity (weights ~ a video stream, a call, background sync...).
    weights = np.array([0.45, 0.25, 0.15, 0.10, 0.05][:n_apps])
    weights = weights / weights.sum()
    total_demand = mbps(rate_mbps) * load_fraction
    demands = weights * total_demand
    apps = [CbrSource(sim, path, f"app{i}", rate=demand)
            for i, demand in enumerate(demands)]
    for app in apps:
        app.start()
    sim.run(until=duration)

    errors = []
    for app, demand in zip(apps, demands):
        achieved = app.delivered_bytes / duration
        errors.append(abs(achieved - demand) / demand)
    return {
        "offered_load_fraction": load_fraction,
        "mean_allocation_error": round(float(np.mean(errors)), 4),
        "max_allocation_error": round(float(np.max(errors)), 4),
        "total_offered_mbps": round(to_mbps(total_demand), 2),
    }


def run(load_fractions: tuple = (0.2, 0.4, 0.6, 0.8, 0.95, 1.1, 1.4),
        rate_mbps: float = 100.0, rtt_ms_val: float = 20.0,
        duration: float = 10.0, n_apps: int = 5) -> ExperimentResult:
    """Sweep aggregate offered load across the saturation point."""
    with Stopwatch() as watch:
        rows = [_measure(frac, rate_mbps, rtt_ms_val, duration, n_apps)
                for frac in load_fractions]

    below = [r for r in rows if r["offered_load_fraction"] <= 0.95]
    above = [r for r in rows if r["offered_load_fraction"] > 1.0]
    max_error_below = max(r["max_allocation_error"] for r in below)
    min_error_above = min(r["mean_allocation_error"] for r in above) \
        if above else 0.0

    parts = [
        f"E8: {n_apps} rate-limited apps on a {rate_mbps:.0f} Mbit/s "
        f"access link; allocation error vs offered load",
        "",
        viz.table(
            [(f"{r['offered_load_fraction']:.2f}",
              r["total_offered_mbps"],
              f"{r['mean_allocation_error']:.2%}",
              f"{r['max_allocation_error']:.2%}") for r in rows],
            header=("load/capacity", "offered Mbit/s", "mean error",
                    "max error")),
        "",
        "Shape check: error ~ 0 below saturation (allocation = offered "
        "load, §2.2); errors appear only past capacity.",
    ]
    metrics = {
        "max_error_below_saturation": max_error_below,
        "min_error_above_saturation": min_error_above,
    }
    return ExperimentResult(
        experiment="access_link",
        text="\n".join(parts),
        metrics=metrics,
        tables={"sweep": rows},
        params={"rate_mbps": rate_mbps, "n_apps": n_apps,
                "duration": duration,
                "load_fractions": list(load_fractions)},
        elapsed_s=watch.elapsed,
    )
