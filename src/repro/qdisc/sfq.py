"""Stochastic fair queueing: DRR over a fixed number of hash buckets.

Unlike :class:`~repro.qdisc.fq.DrrFairQueue`, flows are hashed into a
bounded set of buckets, so distinct flows can collide and share a
bucket.  This is the cheap approximation deployed in practice (Linux
``sfq``); we model it to study how isolation degrades under collisions.
"""

from __future__ import annotations

import hashlib

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .fq import DrrFairQueue


def _bucket_of(flow_id: str, buckets: int, salt: int) -> str:
    digest = hashlib.blake2s(f"{salt}:{flow_id}".encode(),
                             digest_size=4).digest()
    return str(int.from_bytes(digest, "little") % buckets)


class StochasticFairQueue(DrrFairQueue):
    """SFQ: hash flows into ``buckets`` DRR sub-queues.

    Args:
        buckets: number of hash buckets (Linux default is 128).
        salt: hash perturbation (Linux re-salts periodically; we keep it
            fixed per instance for reproducibility).
    """

    def __init__(self, limit_packets: int = 1000, quantum: int = 1514,
                 buckets: int = 128, salt: int = 0):
        if buckets <= 0:
            raise ConfigError(f"buckets must be positive: {buckets}")
        self.buckets = buckets
        self.salt = salt
        super().__init__(limit_packets=limit_packets, quantum=quantum,
                         classify=self._classify)

    def _classify(self, packet: Packet) -> str:
        return _bucket_of(packet.flow_id, self.buckets, self.salt)
