"""Fairness and harm metrics for bandwidth allocations.

Implements the metrics the paper's introduction surveys: Jain's
fairness index (Jain, Chiu & Hawe 1984), the throughput-share view, and
Ware et al.'s "harm" (HotNets '19), which compares a flow's performance
against what it would have achieved alone.
"""

from __future__ import annotations

import numpy as np

from ..errors import AnalysisError


def jain_index(allocations) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1].

    1.0 means perfectly equal; 1/n means one flow has everything.
    """
    x = np.asarray(allocations, dtype=float)
    if len(x) == 0:
        raise AnalysisError("need at least one allocation")
    if np.any(x < 0):
        raise AnalysisError("allocations must be non-negative")
    denom = len(x) * float(np.sum(x * x))
    if denom == 0:
        return 1.0  # all zero: degenerately equal
    return float(np.sum(x)) ** 2 / denom


def throughput_shares(allocations) -> list[float]:
    """Each flow's fraction of the total."""
    x = np.asarray(allocations, dtype=float)
    total = float(np.sum(x))
    if total <= 0:
        raise AnalysisError("total allocation must be positive")
    return [float(v) / total for v in x]


def harm(solo_performance: float, contended_performance: float,
         more_is_better: bool = True) -> float:
    """Ware et al.'s harm metric in [0, 1+).

    For a more-is-better metric (throughput):
        harm = (solo - contended) / solo
    For a less-is-better metric (latency):
        harm = (contended - solo) / contended

    0 means no harm; 1 means the metric was destroyed entirely.
    Negative values (the flow did *better* under contention) are
    clamped to 0.
    """
    if solo_performance <= 0 or contended_performance < 0:
        raise AnalysisError("performances must be positive")
    if more_is_better:
        value = (solo_performance - contended_performance) / solo_performance
    else:
        if contended_performance == 0:
            raise AnalysisError("less-is-better metric cannot be zero")
        value = (contended_performance - solo_performance) \
            / contended_performance
    return max(0.0, float(value))


def max_min_fair_allocation(demands, capacity: float) -> list[float]:
    """Water-filling max-min fair allocation of ``capacity`` among
    ``demands`` -- what ideal fair queueing would give each flow.

    Flows demanding less than their fair share keep their demand; the
    residue is split among the rest, recursively.
    """
    d = [float(v) for v in demands]
    if any(v < 0 for v in d):
        raise AnalysisError("demands must be non-negative")
    if capacity < 0:
        raise AnalysisError("capacity must be non-negative")
    alloc = [0.0] * len(d)
    remaining = capacity
    active = list(range(len(d)))
    while active and remaining > 1e-12:
        share = remaining / len(active)
        satisfied = [i for i in active if d[i] <= share + 1e-15]
        if not satisfied:
            for i in active:
                alloc[i] += share
            remaining = 0.0
            break
        for i in satisfied:
            alloc[i] = d[i]
            remaining -= d[i]
            active.remove(i)
    # Note: the loop re-splits after each satisfaction round.
    return alloc
