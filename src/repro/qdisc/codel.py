"""CoDel (Controlled Delay) active queue management.

Implements the ACM Queue 2012 algorithm: track each packet's sojourn
time; once the sojourn time has exceeded ``target`` continuously for an
``interval``, enter dropping state and drop head-of-line packets at
intervals shrinking with the inverse square root of the drop count.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc


class CoDelQueue(Qdisc):
    """CoDel with a hard packet limit.

    Args:
        target: acceptable standing queue delay (seconds), default 5 ms.
        interval: sliding window over which the minimum sojourn time must
            exceed ``target`` before dropping starts, default 100 ms.
        limit_packets: hard tail-drop limit.
    """

    def __init__(self, target: float = 0.005, interval: float = 0.100,
                 limit_packets: int = 1000):
        super().__init__()
        if target <= 0 or interval <= 0:
            raise ConfigError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self.limit_packets = limit_packets
        self._queue: deque[Packet] = deque()
        self._bytes = 0
        self._first_above_time = 0.0
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0
        self._last_drop_count = 0

    def enqueue(self, packet: Packet, now: float) -> bool:
        if len(self._queue) >= self.limit_packets:
            self._record_drop(packet, now)
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size
        self._record_enqueue(packet, now)
        return True

    def _control_law(self, t: float) -> float:
        return t + self.interval / math.sqrt(self._drop_count)

    def _should_drop(self, packet: Packet, now: float) -> bool:
        sojourn = now - packet.enqueue_time
        if sojourn < self.target or self._bytes <= 1500:
            self._first_above_time = 0.0
            return False
        if self._first_above_time == 0.0:
            self._first_above_time = now + self.interval
            return False
        return now >= self._first_above_time

    def _pop(self) -> Packet:
        packet = self._queue.popleft()
        self._bytes -= packet.size
        return packet

    def dequeue(self, now: float) -> Optional[Packet]:
        if not self._queue:
            self._dropping = False
            return None
        packet = self._pop()
        drop_now = self._should_drop(packet, now)

        if self._dropping:
            if not drop_now:
                self._dropping = False
            else:
                while self._dropping and now >= self._drop_next:
                    self._record_drop(packet, now, enqueued=True)
                    self._drop_count += 1
                    if not self._queue:
                        self._dropping = False
                        return None
                    packet = self._pop()
                    if not self._should_drop(packet, now):
                        self._dropping = False
                    else:
                        self._drop_next = self._control_law(self._drop_next)
        elif drop_now:
            self._record_drop(packet, now, enqueued=True)
            self._dropping = True
            # Start the next drop sooner if we were recently dropping.
            delta = self._drop_count - self._last_drop_count
            if delta > 1 and now - self._drop_next < 16 * self.interval:
                self._drop_count = delta
            else:
                self._drop_count = 1
            self._drop_next = self._control_law(now)
            self._last_drop_count = self._drop_count
            if not self._queue:
                return None
            packet = self._pop()

        self._record_dequeue(packet, now)
        return packet

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def byte_length(self) -> int:
        return self._bytes
