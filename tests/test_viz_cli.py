"""Tests for text visualization and the CLI."""

import pytest

from repro import viz
from repro.cli import build_parser, main
from repro.errors import AnalysisError


class TestSparkline:
    def test_length_bounded(self):
        assert len(viz.sparkline(range(500), width=60)) <= 60

    def test_monotone_series_uses_increasing_blocks(self):
        line = viz.sparkline([1, 2, 3, 4, 5])
        assert line == "".join(sorted(line))

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            viz.sparkline([])


class TestLineChart:
    def test_contains_title_and_labels(self):
        chart = viz.line_chart([0, 1, 2], [5, 3, 9], title="demo",
                               x_label="t", y_label="v")
        assert "demo" in chart
        assert "x: t" in chart

    def test_phase_markers_rendered(self):
        chart = viz.line_chart(list(range(100)), list(range(100)),
                               phases=[(0, "alpha"), (50, "beta")])
        assert "alpha" in chart
        assert "beta" in chart

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(AnalysisError):
            viz.line_chart([1, 2], [1])


class TestBarAndTable:
    def test_bar_chart_scales_to_peak(self):
        chart = viz.bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_table_aligns_columns(self):
        text = viz.table([("a", 1), ("bbbb", 22)], header=("n", "v"))
        lines = text.splitlines()
        assert len(set(len(l) for l in lines if l.strip())) == 1

    def test_cdf_chart_runs(self):
        chart = viz.cdf_chart([1, 2, 2, 3, 9], title="cdf")
        assert "cdf" in chart

    def test_format_rate(self):
        assert viz.format_rate(6_000_000) == "48.00 Mbit/s"


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "fig3" in out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "figure99"]) == 2

    def test_run_smoke_access_link(self, capsys, tmp_path):
        assert main(["run", "access_link", "--smoke",
                     "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "E8" in out
        assert (tmp_path / "access_link" / "metrics.json").exists()

    def test_quicklook_none(self, capsys):
        assert main(["quicklook", "--cross", "none",
                     "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "mean elasticity" in out

    def test_synth_ndt(self, capsys, tmp_path):
        out_file = tmp_path / "data.jsonl"
        assert main(["synth-ndt", "--flows", "25",
                     "--out", str(out_file)]) == 0
        assert out_file.exists()
        assert len(out_file.read_text().splitlines()) == 25

    def test_parser_has_all_subcommands(self):
        parser = build_parser()
        text = parser.format_help()
        for sub in ("list", "run", "quicklook", "synth-ndt"):
            assert sub in text
