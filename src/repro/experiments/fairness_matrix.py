"""Experiment E6: the pairwise CCA contention matrix.

The background the paper's introduction rests on: when flows *do*
contend, which CCA wins is decided by CCA dynamics -- e.g. "BBR has
been shown to take more than its long-term fair share of bandwidth when
competing against NewReno and Cubic" (Ware et al. [2]).

We race every ordered pair of CCAs on a shared DropTail bottleneck and
report the row player's throughput share.  Expected shape: ~0.5 on the
diagonal; BBR's rows above 0.5 against loss-based CCAs; delay-based
CCAs (Vegas, Copa default mode) below 0.5 against loss-based ones.

The default 1xBDP bottleneck is the regime where BBR's aggression
shows; sweep ``buffer_multiplier`` upward to reproduce the deep-buffer
reversal where loss-based CCAs out-buffer BBR's 2xBDP inflight cap.
"""

from __future__ import annotations

from .. import viz
from ..cca import CCA_REGISTRY, make_cca
from ..sim.engine import Simulator
from ..sim.network import dumbbell
from ..tcp.endpoint import Connection
from ..units import mbps, ms, to_mbps
from .runner import ExperimentResult, Stopwatch

DEFAULT_CCAS = ("reno", "cubic", "vegas", "copa", "bbr")


def _share(cca_a: str, cca_b: str, rate_mbps: float, rtt_ms_val: float,
           duration: float, buffer_multiplier: float) -> float:
    sim = Simulator()
    path = dumbbell(sim, mbps(rate_mbps), ms(rtt_ms_val),
                    buffer_multiplier=buffer_multiplier)
    a = Connection(sim, path, "a", make_cca(cca_a))
    b = Connection(sim, path, "b", make_cca(cca_b))
    a.sender.set_infinite_backlog()
    b.sender.set_infinite_backlog()
    sim.run(until=duration)
    got_a = a.receiver.received_bytes
    got_b = b.receiver.received_bytes
    total = got_a + got_b
    return got_a / total if total else 0.0


def run(ccas: tuple = DEFAULT_CCAS, rate_mbps: float = 40.0,
        rtt_ms_val: float = 40.0, duration: float = 30.0,
        buffer_multiplier: float = 1.0) -> ExperimentResult:
    """Build the full share matrix."""
    with Stopwatch() as watch:
        matrix: dict[tuple[str, str], float] = {}
        for a in ccas:
            for b in ccas:
                matrix[(a, b)] = _share(a, b, rate_mbps, rtt_ms_val,
                                        duration, buffer_multiplier)

    rows = [{"cca_a": a, "cca_b": b, "share_a": round(share, 4)}
            for (a, b), share in matrix.items()]
    table_rows = [
        [a] + [f"{matrix[(a, b)]:.2f}" for b in ccas]
        for a in ccas
    ]
    bbr_vs_loss = [matrix[("bbr", loss)] for loss in ("reno", "cubic")
                   if loss in ccas]
    vegas_vs_loss = [matrix[("vegas", loss)] for loss in ("reno", "cubic")
                     if loss in ccas]

    parts = [
        f"E6: pairwise throughput share of the ROW CCA vs the column "
        f"CCA ({rate_mbps:.0f} Mbit/s, {rtt_ms_val:.0f} ms, "
        f"{buffer_multiplier:.0f}x BDP DropTail, {duration:.0f} s)",
        "",
        viz.table(table_rows, header=("row \\ col", *ccas)),
        "",
        "Shape checks: BBR > 0.5 vs loss-based (Ware et al.); "
        "delay-based < 0.5 vs loss-based.",
    ]
    metrics = {
        "bbr_share_vs_loss_min": min(bbr_vs_loss) if bbr_vs_loss else 0.0,
        "vegas_share_vs_loss_max": max(vegas_vs_loss)
            if vegas_vs_loss else 1.0,
    }
    for (a, b), share in matrix.items():
        metrics[f"share_{a}_vs_{b}"] = share
    return ExperimentResult(
        experiment="fairness_matrix",
        text="\n".join(parts),
        metrics=metrics,
        tables={"matrix": rows},
        params={"ccas": list(ccas), "rate_mbps": rate_mbps,
                "duration": duration,
                "buffer_multiplier": buffer_multiplier},
        elapsed_s=watch.elapsed,
    )
