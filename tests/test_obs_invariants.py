"""Trace-driven invariant checks across qdisc x CCA scenarios.

Every simulation scenario here records a full event trace and feeds it
through all four invariant checkers (monotonic clock, non-negative
queues, byte conservation, cwnd bounds); a healthy simulator produces
zero violations.  A separate test confirms the checkers are not
vacuous by feeding them hand-built pathological traces.
"""

import os
import subprocess
import sys

import pytest

from repro.cca import BbrCca, RenoCca
from repro.cca.nimbus import NimbusCca
from repro.obs import EventKind, TraceEvent, capture, check_trace
from repro.qdisc import DropTailQueue, DrrFairQueue, TokenBucketFilter
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms

CCAS = {"reno": RenoCca, "bbr": BbrCca, "nimbus": NimbusCca}


def _make_qdisc(kind):
    # Deliberately tight buffers so the scenarios exercise drops
    # (admission refusals and, for FQ, longest-queue evictions).
    if kind == "fifo":
        return DropTailQueue(limit_packets=40)
    if kind == "fq":
        return DrrFairQueue(limit_packets=40)
    if kind == "tbf":
        return TokenBucketFilter(rate=mbps(8), burst=30_000,
                                 child=DropTailQueue(limit_packets=40))
    raise AssertionError(kind)


def _qdiscs_under_test(qdisc):
    if isinstance(qdisc, TokenBucketFilter):
        return [qdisc, qdisc.child]
    return [qdisc]


@pytest.mark.parametrize("cca_name", sorted(CCAS))
@pytest.mark.parametrize("qdisc_kind", ["fifo", "fq", "tbf"])
def test_invariants_hold(qdisc_kind, cca_name):
    with capture() as trace:
        sim = Simulator()
        qdisc = _make_qdisc(qdisc_kind)
        path = dumbbell(sim, mbps(10), ms(40), qdisc=qdisc)
        probe = Connection(sim, path, f"probe-{cca_name}",
                           CCAS[cca_name]())
        probe.sender.set_infinite_backlog()
        cross = Connection(sim, path, "cross-reno", RenoCca())
        cross.sender.set_infinite_backlog()
        sim.run(until=4.0)

    violations = check_trace(trace.events,
                             qdiscs=_qdiscs_under_test(qdisc))
    assert violations == [], "\n".join(str(v) for v in violations)

    kinds = trace.counts_by_kind()
    assert kinds["enqueue"] > 0
    assert kinds["dequeue"] > 0
    assert kinds["cwnd"] > 0
    # Two backlogged flows into a 40-packet buffer must overflow.
    assert kinds.get("drop", 0) > 0


def test_fq_eviction_drops_conserve_bytes():
    # FQ's overflow policy drops from the *longest* queue, i.e. evicts
    # packets that were already enqueued -- the case the conservation
    # checker distinguishes via meta={"enqueued": True}.
    with capture() as trace:
        sim = Simulator()
        qdisc = DrrFairQueue(limit_packets=20)
        path = dumbbell(sim, mbps(5), ms(30), qdisc=qdisc)
        for i in range(3):
            conn = Connection(sim, path, f"f{i}", RenoCca())
            conn.sender.set_infinite_backlog()
        sim.run(until=3.0)
    evicted = [e for e in trace.events
               if e.kind == EventKind.DROP and (e.meta or {}).get("enqueued")]
    assert evicted, "expected longest-queue evictions from FQ overflow"
    assert check_trace(trace.events, qdiscs=[qdisc]) == []


def test_checkers_flag_bad_traces():
    # Dequeue with no matching enqueue: both queue checkers must fire.
    bad = [TraceEvent(0.0, EventKind.DEQUEUE, "qdisc:x", "f", 1500.0)]
    found = {v.invariant for v in check_trace(bad)}
    assert "queue_non_negative" in found
    assert "byte_conservation" in found

    # Non-finite and out-of-bounds windows.
    bad = [TraceEvent(1.0, EventKind.CWND, "cca:x", "f", float("nan")),
           TraceEvent(2.0, EventKind.CWND, "cca:x", "f", -3.0)]
    violations = check_trace(bad)
    assert [v.invariant for v in violations] == ["cwnd_bounds"] * 2

    # Clock regression.
    bad = [TraceEvent(1.0, EventKind.LOSS, "tcp:f", "f"),
           TraceEvent(0.5, EventKind.LOSS, "tcp:f", "f")]
    assert [v.invariant for v in check_trace(bad)] == ["monotonic_clock"]

    # A SIM_START legitimately resets the clock: no violation.
    ok = [TraceEvent(9.0, EventKind.LOSS, "tcp:f", "f"),
          TraceEvent(0.0, EventKind.SIM_START, "sim"),
          TraceEvent(0.5, EventKind.LOSS, "tcp:f", "f")]
    assert check_trace(ok) == []


def test_final_residual_mismatch_is_detected():
    # Claim a qdisc still holds bytes the trace never saw arrive.
    class FakeQdisc:
        obs_name = "qdisc:fake-queue"
        byte_length = 1500

        def __len__(self):
            return 1

    events = [TraceEvent(0.0, EventKind.ENQUEUE, "qdisc:fake-queue",
                         "f", 1500.0),
              TraceEvent(1.0, EventKind.DEQUEUE, "qdisc:fake-queue",
                         "f", 1500.0)]
    found = {v.invariant for v in check_trace(events, qdiscs=[FakeQdisc()])}
    assert "queue_non_negative" in found
    assert "byte_conservation" in found


def test_env_var_installs_runtime_checkers():
    # A fresh interpreter with REPRO_CHECK_INVARIANTS=1 installs the
    # strict checkers the moment a Simulator is constructed.
    code = (
        "import repro.obs.invariants as inv\n"
        "from repro.sim import Simulator\n"
        "assert inv._runtime_checkers is None\n"
        "Simulator()\n"
        "assert inv._runtime_checkers is not None\n"
        "assert all(c.strict for c in inv._runtime_checkers)\n"
    )
    env = dict(os.environ, REPRO_CHECK_INVARIANTS="1")
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH", "")]))
    proc = subprocess.run([sys.executable, "-c", code], env=env,
                          cwd=os.path.dirname(os.path.dirname(
                              os.path.abspath(__file__))),
                          capture_output=True, text=True)
    assert proc.returncode == 0, proc.stderr
