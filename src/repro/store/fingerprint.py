"""Deterministic config fingerprints for the result store.

A fingerprint is SHA-256 over a *canonical* JSON serialization of a
config payload, salted with a code-version string.  Canonicalization
makes the digest a function of the config's **meaning**, not its
in-memory representation:

* dict key order never matters (keys are sorted),
* tuples and lists hash identically (both become JSON arrays),
* dataclasses hash as their field dicts, enums as their values,
  numpy scalars/arrays as plain Python numbers/lists,
* float formatting never matters -- ``0.50`` and ``0.5`` parse to the
  same IEEE-754 double and ``repr``-based JSON encoding of doubles is
  shortest-round-trip stable across platforms and Python >= 3.1.

The salt (:data:`CODE_VERSION`) folds the package version and a store
schema number into every digest, so bumping either invalidates all
cached results at once -- the cache can never serve a result computed
by semantically different code.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import fields, is_dataclass
from typing import Iterable, Mapping

from .. import __version__
from ..errors import ConfigError

#: Bump when cached-result semantics change without a package version
#: bump (e.g. a simulator bug fix that alters results).
#: 2: per-flow NDT seeding + mergeable Fig2Result (streaming pipeline).
STORE_SCHEMA_VERSION = 2

#: The default fingerprint salt: package version + store schema.
CODE_VERSION = f"{__version__}+store{STORE_SCHEMA_VERSION}"


def canonicalize(obj):
    """Reduce ``obj`` to canonical JSON-able primitives.

    Raises :class:`ConfigError` for values with no canonical form
    (arbitrary objects, NaN floats) rather than hashing something
    unstable.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        if math.isnan(obj):
            raise ConfigError("cannot fingerprint NaN")
        return obj
    if is_dataclass(obj) and not isinstance(obj, type):
        return {f.name: canonicalize(getattr(obj, f.name))
                for f in fields(obj)}
    if isinstance(obj, Mapping):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise ConfigError(
                    f"fingerprint dict keys must be str, got {key!r}")
            out[key] = canonicalize(value)
        return out
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonicalize(v) for v in obj]
        return sorted(items, key=lambda v: json.dumps(v, sort_keys=True))
    if hasattr(obj, "fingerprint_config"):  # opt-in hook for components
        return canonicalize(obj.fingerprint_config())
    if hasattr(obj, "value") and type(obj).__module__ != "builtins":  # enums
        return canonicalize(obj.value)
    if hasattr(obj, "dtype"):  # numpy scalar or array
        if getattr(obj, "ndim", 0) == 0:
            return canonicalize(obj.item())
        return canonicalize(obj.tolist())
    raise ConfigError(f"cannot fingerprint {type(obj).__name__}: {obj!r}")


def canonical_json(obj) -> str:
    """The canonical JSON string whose digest is the fingerprint."""
    return json.dumps(canonicalize(obj), sort_keys=True,
                      separators=(",", ":"), allow_nan=False)


def fingerprint(payload, kind: str = "generic",
                salt: str | None = None) -> str:
    """SHA-256 hex digest of ``payload`` under the code-version salt.

    Args:
        payload: any canonicalizable config value.
        kind: a namespace string ("path", "sweep", "experiment", ...)
            so configs of different task types can never collide.
        salt: override of :data:`CODE_VERSION` (tests; forced
            invalidation).

    >>> fingerprint({"a": 1, "b": 2}) == fingerprint({"b": 2, "a": 1})
    True
    >>> fingerprint(0.5) == fingerprint(float("0.50"))
    True
    >>> fingerprint(1, kind="x") == fingerprint(1, kind="y")
    False
    """
    material = (f"{salt if salt is not None else CODE_VERSION}\x00"
                f"{kind}\x00{canonical_json(payload)}")
    return hashlib.sha256(material.encode()).hexdigest()


def fingerprint_stream(items: Iterable, kind: str = "dataset",
                       salt: str | None = None) -> str:
    """Incremental fingerprint over a large sequence of items.

    Equivalent in spirit to ``fingerprint(list(items))`` but hashes one
    canonical item at a time, so multi-thousand-record datasets never
    materialize a giant JSON string.
    """
    h = hashlib.sha256(
        f"{salt if salt is not None else CODE_VERSION}\x00{kind}\x00"
        .encode())
    for item in items:
        h.update(canonical_json(item).encode())
        h.update(b"\x1e")  # record separator: [a, bc] != [ab, c]
    return h.hexdigest()


def callable_config(fn) -> dict:
    """A canonical config describing a task callable.

    Handles module-level functions and ``functools.partial`` chains
    over them (the two shapes the pool can dispatch); bound arguments
    are part of the config, so partials with different parameters hash
    differently.
    """
    partial_args: list = []
    partial_kwargs: dict = {}
    while hasattr(fn, "func"):  # functools.partial
        partial_args = list(fn.args) + partial_args
        partial_kwargs = {**fn.keywords, **partial_kwargs}
        fn = fn.func
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise ConfigError(
            f"cannot fingerprint callable {fn!r}: needs a module-level "
            "function (or functools.partial of one)")
    return {
        "module": module,
        "qualname": qualname,
        "args": canonicalize(partial_args),
        "kwargs": canonicalize(partial_kwargs),
    }
