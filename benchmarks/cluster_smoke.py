"""CI smoke for the cluster fabric: speedup, byte-identity, failover.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/cluster_smoke.py

Starts real ``repro serve`` subprocesses (each with its own store
root) and drives the ISSUE-8 acceptance experiment end to end:

1. A serial golden run of the reference campaign, timed.
2. A 1-node clustered run: merged per-path store objects must be
   byte-identical to the serial run's.
3. A 2-node clustered run (fresh nodes, fresh local store): identical
   bytes again, and -- on machines with >= 2 CPU cores -- at least a
   1.7x wall-clock speedup over the 1-node run.
4. A 2-node run where one node is SIGKILLed as soon as it is busy:
   the coordinator re-dispatches its work and the merged result still
   equals the serial golden run.
"""

import os
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time

#: The reference campaign: big enough that per-path simulation
#: dominates HTTP dispatch overhead (~1s/path on a CI runner).
PARAMS = {"n_paths": 16, "seed": 5, "duration": 2.0,
          "backend": "packet"}
SERVER_STARTUP_S = 30


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}{': ' + detail if detail else ''}")
    if not condition:
        raise SystemExit(f"cluster smoke failed: {label} ({detail})")


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_node(tmp, name, port):
    env = dict(os.environ,
               REPRO_STORE=os.path.join(tmp, f"node-{name}"),
               PYTHONPATH="src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", str(port),
         "--concurrency", "1", "--job-workers", "1", "--rate", "0"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)


def wait_healthy(port, deadline):
    from repro.serve import ServeClient
    client = ServeClient(port=port, timeout=5.0, connect_timeout=1.0)
    while time.time() < deadline:
        try:
            if client.healthz()["status"] == "ok":
                return
        except Exception:
            time.sleep(0.2)
    raise SystemExit(f"cluster smoke failed: node :{port} never "
                     "became healthy")


def clustered_run(tmp, label, ports):
    """One clustered campaign into a fresh local store; returns
    (store, result, wall_seconds)."""
    from repro.cluster import run_clustered_campaign
    from repro.store import ArtifactStore

    store = ArtifactStore(os.path.join(tmp, f"local-{label}"))
    spec = ",".join(f"127.0.0.1:{p}" for p in ports)
    t0 = time.monotonic()
    result = run_clustered_campaign(PARAMS, spec, store=store,
                                    workers=1)
    return store, result, time.monotonic() - t0


def assert_matches_golden(label, store, result, golden_store, golden):
    from repro.serve.jobs import campaign_from_params

    campaign = campaign_from_params(PARAMS)
    keys = [campaign.path_key(s) for s in campaign.specs]
    identical = all(store.get_bytes(k) == golden_store.get_bytes(k)
                    for k in keys)
    check(f"{label}: per-path store objects byte-identical",
          identical, f"{len(keys)} paths")
    check(f"{label}: fraction_contending matches",
          result.fraction_contending == golden.fraction_contending,
          f"{result.fraction_contending:.3f}")
    check(f"{label}: verdicts match",
          [r.verdict for r in result.results] ==
          [r.verdict for r in golden.results])


def kill_when_busy(proc, port, stop):
    """Watcher: SIGKILL ``proc`` the moment its node reports a job."""
    from repro.serve import ServeClient

    client = ServeClient(port=port, timeout=5.0, connect_timeout=1.0)
    deadline = time.time() + 60
    while time.time() < deadline and not stop.is_set():
        try:
            health = client.healthz()
            if health.get("jobs", 0) >= 1:
                proc.send_signal(signal.SIGKILL)
                print(f"  killed node :{port} mid-run "
                      f"(jobs={health['jobs']})")
                return
        except Exception:
            pass
        time.sleep(0.05)


def main():
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                    "src"))
    from repro.serve.jobs import campaign_from_params
    from repro.store import ArtifactStore

    procs = []
    with tempfile.TemporaryDirectory(
            prefix="repro-cluster-smoke-") as tmp:
        try:
            print("phase 1: serial golden run")
            golden_store = ArtifactStore(os.path.join(tmp, "serial"))
            t0 = time.monotonic()
            golden = campaign_from_params(PARAMS).run(
                store=golden_store, workers=1)
            t_serial = time.monotonic() - t0
            print(f"  serial: {t_serial:.1f}s for "
                  f"{PARAMS['n_paths']} paths")

            print("phase 2: 1-node clustered run")
            port_a = free_port()
            procs.append(start_node(tmp, "a", port_a))
            wait_healthy(port_a, time.time() + SERVER_STARTUP_S)
            store1, result1, t_one = clustered_run(tmp, "one",
                                                   [port_a])
            print(f"  1 node: {t_one:.1f}s")
            assert_matches_golden("1-node", store1, result1,
                                  golden_store, golden)
            procs.pop().terminate()

            print("phase 3: 2-node clustered run (fresh nodes)")
            port_b, port_c = free_port(), free_port()
            procs.append(start_node(tmp, "b", port_b))
            procs.append(start_node(tmp, "c", port_c))
            wait_healthy(port_b, time.time() + SERVER_STARTUP_S)
            wait_healthy(port_c, time.time() + SERVER_STARTUP_S)
            store2, result2, t_two = clustered_run(
                tmp, "two", [port_b, port_c])
            print(f"  2 nodes: {t_two:.1f}s")
            assert_matches_golden("2-node", store2, result2,
                                  golden_store, golden)
            cores = (len(os.sched_getaffinity(0))
                     if hasattr(os, "sched_getaffinity")
                     else os.cpu_count() or 1)
            if cores >= 2:
                check("2-node speedup >= 1.7x vs 1 node",
                      t_one / t_two >= 1.7,
                      f"{t_one / t_two:.2f}x")
            else:
                print(f"  [skip] speedup gate ({cores} CPU core: "
                      "nodes share it, no parallelism to measure)")

            print("phase 4: SIGKILL one node mid-run (fresh nodes)")
            # Fresh nodes again: phase-3 stores would answer every
            # shard from cache and the kill would never land mid-work.
            while procs:
                procs.pop().terminate()
            port_d, port_e = free_port(), free_port()
            procs.append(start_node(tmp, "d", port_d))
            victim = start_node(tmp, "e", port_e)
            procs.append(victim)
            wait_healthy(port_d, time.time() + SERVER_STARTUP_S)
            wait_healthy(port_e, time.time() + SERVER_STARTUP_S)
            stop = threading.Event()
            watcher = threading.Thread(
                target=kill_when_busy, args=(victim, port_e, stop),
                daemon=True)
            watcher.start()
            store3, result3, t_kill = clustered_run(
                tmp, "kill", [port_d, port_e])
            stop.set()
            watcher.join(timeout=5)
            check("victim was killed mid-run",
                  victim.poll() is not None and victim.poll() != 0)
            print(f"  converged in {t_kill:.1f}s with one node dead")
            assert_matches_golden("failover", store3, result3,
                                  golden_store, golden)
        finally:
            for proc in procs:
                if proc.poll() is None:
                    proc.terminate()
            for proc in procs:
                try:
                    proc.wait(timeout=10)
                except subprocess.TimeoutExpired:
                    proc.kill()
    print("cluster smoke: all checks passed")


if __name__ == "__main__":
    main()
