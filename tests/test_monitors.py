"""Tests for queue and utilization monitors."""

import pytest

from repro.cca import CubicCca, VegasCca
from repro.errors import AnalysisError, ConfigError
from repro.sim import QueueMonitor, Simulator, UtilizationMonitor, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms


def test_queue_monitor_sees_standing_queue():
    sim = Simulator()
    path = dumbbell(sim, mbps(10), ms(40), buffer_multiplier=2.0)
    monitor = QueueMonitor(sim, path.bottleneck.qdisc, interval=0.05)
    monitor.start()
    conn = Connection(sim, path, "f", CubicCca())
    conn.sender.set_infinite_backlog()
    sim.run(until=15.0)
    stats = monitor.occupancy_stats()
    assert stats["max_packets"] > 10
    assert stats["mean_bytes"] > 0
    assert monitor.standing_delay(mbps(10)) >= 0


def test_queue_monitor_idle_link_is_empty():
    sim = Simulator()
    path = dumbbell(sim, mbps(10), ms(40))
    monitor = QueueMonitor(sim, path.bottleneck.qdisc)
    monitor.start()
    sim.run(until=2.0)
    assert monitor.occupancy_stats()["max_packets"] == 0


def test_queue_monitor_stop():
    sim = Simulator()
    path = dumbbell(sim, mbps(10), ms(40))
    monitor = QueueMonitor(sim, path.bottleneck.qdisc, interval=0.1)
    monitor.start()
    sim.run(until=1.0)
    monitor.stop()
    n = len(monitor.times)
    sim.run(until=2.0)
    assert len(monitor.times) == n


def test_utilization_monitor_tracks_saturation():
    sim = Simulator()
    path = dumbbell(sim, mbps(10), ms(40))
    monitor = UtilizationMonitor(sim, path.bottleneck, interval=0.5)
    monitor.start()
    conn = Connection(sim, path, "f", VegasCca())
    conn.sender.set_infinite_backlog()
    sim.run(until=15.0)
    assert monitor.mean_utilization > 0.8
    assert max(monitor.utilization) <= 1.05


def test_monitors_reject_bad_config():
    sim = Simulator()
    path = dumbbell(sim, mbps(10), ms(40))
    with pytest.raises(ConfigError):
        QueueMonitor(sim, path.bottleneck.qdisc, interval=0)
    with pytest.raises(ConfigError):
        UtilizationMonitor(sim, path.bottleneck, interval=-1)


def test_empty_monitors_raise_analysis_error():
    # Reading a monitor before it has samples is a usage/analysis
    # error, not a configuration error: the monitor was constructed
    # fine, it just was never started (or never ticked).
    sim = Simulator()
    path = dumbbell(sim, mbps(10), ms(40))
    queue_mon = QueueMonitor(sim, path.bottleneck.qdisc)
    with pytest.raises(AnalysisError):
        queue_mon.occupancy_stats()
    with pytest.raises(AnalysisError):
        queue_mon.standing_delay(mbps(10))
    util_mon = UtilizationMonitor(sim, path.bottleneck)
    with pytest.raises(AnalysisError):
        util_mon.mean_utilization
