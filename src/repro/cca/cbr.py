"""Constant-bitrate (non-reactive) sender.

Models an unresponsive flow: a fixed pacing rate, an effectively
unlimited window, and no reaction to loss, delay, or ECN.  Used as the
"CBR UDP" cross traffic of the paper's Figure 3 when the stream runs
over the transport endpoint; :mod:`repro.traffic.cbr` additionally
offers a raw packet source that bypasses the transport entirely.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import DEFAULT_MSS
from .base import CongestionControl


class CbrCca(CongestionControl):
    """Fixed-rate sender ignoring all congestion signals.

    Args:
        rate: pacing rate, bytes/second.
    """

    name = "cbr"

    def __init__(self, rate: float, mss: int = DEFAULT_MSS):
        super().__init__(mss=mss)
        if rate <= 0:
            raise ConfigError(f"rate must be positive: {rate}")
        self.rate = float(rate)

    @property
    def cwnd(self) -> float:
        return 1e9  # never window-limited

    @property
    def pacing_rate(self) -> float:
        return self.rate

    @property
    def allows_retransmission(self) -> bool:
        return False
