"""Built-in quick performance smoke: ``repro bench``.

A self-contained, dependency-free (no pytest-benchmark) perf check
covering the paths this repo cares about: raw engine dispatch, the
vectorized analysis kernels, and the serial-vs-parallel speedup of the
two paper-scale fan-outs (the E7 campaign and the Figure 2 pipeline).
Each parallel row also verifies the determinism contract -- parallel
results must be bit-for-bit identical to serial -- so the perf smoke
doubles as a correctness gate.

The full-scale serial/parallel trajectory across PRs is tracked by
``benchmarks/bench_parallel.py``; this module is the seconds-not-
minutes version wired into ``repro bench``, ``make bench-quick``, and
CI.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

import numpy as np

from .runtime import resolve_workers


@dataclass(frozen=True)
class BenchRow:
    """One benchmark outcome.

    Attributes:
        name: benchmark id.
        wall_s: wall-clock time of the measured section.
        metric: headline rate/speedup value.
        unit: unit of ``metric``.
        ok: any self-check attached to the benchmark passed.
    """

    name: str
    wall_s: float
    metric: float
    unit: str
    ok: bool


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    value = fn()
    return time.perf_counter() - start, value


def bench_engine(sim_seconds: float = 0.5) -> BenchRow:
    """Raw event scheduling/dispatch rate."""
    from .sim import Simulator

    def run():
        sim = Simulator()

        def chain():
            if sim.now < sim_seconds:
                sim.schedule(1e-5, chain)

        for _ in range(10):
            sim.schedule(0.0, chain)
        sim.run()
        return sim.events_processed

    wall, events = _timed(run)
    return BenchRow("engine_events", wall, events / wall, "events/s",
                    ok=events > 0)


def bench_pelt(n_points: int = 2_000) -> BenchRow:
    """PELT over a noisy 4-level step signal (the P3 microbench)."""
    from .analysis import pelt

    rng = np.random.default_rng(1)
    quarter = n_points // 4
    signal = np.concatenate([rng.normal(i * 10.0, 1.0, quarter)
                             for i in range(4)])
    wall, result = _timed(lambda: pelt(signal))
    return BenchRow("pelt_2k", wall, len(signal) / wall, "points/s",
                    ok=result.num_changes >= 3)


def bench_elasticity(trace_seconds: float = 60.0) -> BenchRow:
    """Offline sliding-window elasticity over a long trace."""
    from .core.elasticity import elasticity_series

    t = np.arange(0, trace_seconds, 0.01)
    z = 1e6 + 5e5 * np.sin(2 * np.pi * 5.0 * t)
    wall, readings = _timed(lambda: elasticity_series(t, z))
    return BenchRow("elasticity_series", wall, len(readings) / wall,
                    "windows/s", ok=len(readings) > 0)


def bench_pipeline(n_flows: int = 1_500,
                   workers: int | None = None) -> list[BenchRow]:
    """Figure 2 pipeline: serial vs parallel wall clock + identity."""
    from .ndt.pipeline import run_pipeline
    from .ndt.synth import SyntheticNdtGenerator

    dataset = SyntheticNdtGenerator(seed=2023).generate(n_flows)
    wall_serial, serial = _timed(
        lambda: run_pipeline(dataset, workers=1))
    n_workers = resolve_workers(workers)
    wall_par, parallel = _timed(
        lambda: run_pipeline(dataset, workers=n_workers))
    identical = serial.flows == parallel.flows \
        and serial.counts == parallel.counts
    return [
        BenchRow("fig2_pipeline_serial", wall_serial,
                 n_flows / wall_serial, "flows/s", ok=True),
        BenchRow(f"fig2_pipeline_x{n_workers}", wall_par,
                 wall_serial / wall_par, "speedup", ok=identical),
    ]


def bench_campaign(n_paths: int = 6, duration: float = 5.0,
                   workers: int | None = None) -> list[BenchRow]:
    """E7 campaign: serial vs parallel wall clock + identity."""
    from .core.campaign import Campaign

    wall_serial, serial = _timed(
        lambda: Campaign(n_paths=n_paths, seed=1,
                         duration=duration).run(workers=1))
    n_workers = resolve_workers(workers)
    wall_par, parallel = _timed(
        lambda: Campaign(n_paths=n_paths, seed=1,
                         duration=duration).run(workers=n_workers))
    identical = serial.results == parallel.results
    return [
        BenchRow("campaign_serial", wall_serial, n_paths / wall_serial,
                 "paths/s", ok=True),
        BenchRow(f"campaign_x{n_workers}", wall_par,
                 wall_serial / wall_par, "speedup", ok=identical),
    ]


def run_quick_bench(workers: int | None = None,
                    full: bool = False) -> list[BenchRow]:
    """Run the whole smoke suite; ``full`` uses paper-scale sizes."""
    rows = [
        bench_engine(),
        bench_pelt(),
        bench_elasticity(),
    ]
    if full:
        rows += bench_pipeline(n_flows=9_984, workers=workers)
        rows += bench_campaign(n_paths=48, duration=30.0,
                               workers=workers)
    else:
        rows += bench_pipeline(workers=workers)
        rows += bench_campaign(workers=workers)
    return rows


def render(rows: list[BenchRow]) -> str:
    """Fixed-width table of benchmark rows."""
    lines = [f"workers default: {resolve_workers(None)} "
             f"(cpu_count={os.cpu_count()}, "
             f"REPRO_WORKERS={os.environ.get('REPRO_WORKERS', 'unset')})",
             f"{'benchmark':24s} {'wall [s]':>10s} "
             f"{'metric':>14s} {'unit':12s} ok"]
    for row in rows:
        lines.append(f"{row.name:24s} {row.wall_s:10.3f} "
                     f"{row.metric:14.1f} {row.unit:12s} "
                     f"{'yes' if row.ok else 'NO'}")
    return "\n".join(lines)
