"""B6: fluid vs packet backend -- speedup and regression gate.

Runs the same calibrated-envelope reference scenario (reno cross
traffic, 48 Mbit/s / 50 ms, droptail, 20 s, seed 1 -- an elastic
envelope cell) on both backends, plus a raw engine event-throughput
microbenchmark and a fluid envelope sweep, and writes ``BENCH_6.json``:

* ``packet_scenario_s`` / ``fluid_scenario_s`` / ``speedup``
* ``packet_events_per_s`` -- full-stack packet simulation rate
* ``engine_events_per_s`` -- bare event loop dispatch rate
* ``fluid_scenarios_per_s`` -- envelope cells per second, fluid
* ``verdict_agreement`` -- both backends call the reference cell

``--check`` compares against the committed baseline
(``benchmarks/BENCH_6_baseline.json``) and exits non-zero when

* the fluid speedup falls below 10x (within-run ratio, so CI machine
  speed cancels out), or
* the packet stack's *normalized* event throughput -- scenario events
  per bare engine event, a machine-relative ratio -- drops more than
  20% below the baseline's, or
* the backends disagree on the reference verdict.

``--write-baseline`` refreshes the committed baseline from a new run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

BASELINE = Path(__file__).resolve().parent / "BENCH_6_baseline.json"
RESULT = Path(__file__).resolve().parent.parent / "BENCH_6.json"

#: The reference cell (from ``repro.experiments.envelope``): elastic,
#: heavy enough on the packet backend to time meaningfully.
REFERENCE = dict(family="probe", rate_mbps=48.0, rtt_ms=50.0,
                 qdisc="droptail", duration=20.0, seed=1,
                 cross_traffic="reno")

MIN_SPEEDUP = 10.0
MAX_NORMALIZED_DROP = 0.20


def bench_engine_events(target: int = 400_000, repeats: int = 3) -> float:
    """Bare event-loop throughput (events/second), best of ``repeats``."""
    from repro.sim.engine import Simulator

    best = 0.0
    for _ in range(repeats):
        sim = Simulator()
        stop = target // 10

        def chain(sim=sim, stop=stop):
            if sim.events_processed < stop:
                sim.call_later(1e-5, chain)

        for _ in range(10):
            sim.call_later(0.0, chain)
        t0 = time.perf_counter()
        sim.run()
        elapsed = time.perf_counter() - t0
        best = max(best, sim.events_processed / elapsed)
    return best


def run_reference(backend: str):
    from repro.qa.scenario import Scenario, run_scenario

    scenario = Scenario(backend=backend, **REFERENCE)
    t0 = time.perf_counter()
    outcome = run_scenario(scenario, check_invariants=False)
    elapsed = time.perf_counter() - t0
    return elapsed, outcome


def bench_fluid_sweep() -> float:
    """Fluid envelope cells per second (serial)."""
    from repro.experiments.envelope import run

    result = run(backend="fluid", workers=1)
    return result.metrics["scenarios_per_s"]


def measure() -> dict:
    engine_eps = bench_engine_events()
    packet_s, packet_out = run_reference("packet")
    # The fluid run is fast enough to repeat; keep the best.
    fluid_s = float("inf")
    for _ in range(3):
        elapsed, fluid_out = run_reference("fluid")
        fluid_s = min(fluid_s, elapsed)
    agreement = (bool(packet_out.probe["contending"])
                 == bool(fluid_out.probe["contending"]))
    return {
        "reference": REFERENCE,
        "engine_events_per_s": round(engine_eps, 1),
        "packet_scenario_s": round(packet_s, 3),
        "packet_events_per_s": round(
            packet_out.events_processed / packet_s, 1),
        "fluid_scenario_s": round(fluid_s, 4),
        "speedup": round(packet_s / fluid_s, 2),
        "fluid_scenarios_per_s": round(bench_fluid_sweep(), 2),
        "packet_contending": bool(packet_out.probe["contending"]),
        "fluid_contending": bool(fluid_out.probe["contending"]),
        "verdict_agreement": agreement,
    }


def check(result: dict) -> list[str]:
    problems = []
    if result["speedup"] < MIN_SPEEDUP:
        problems.append(f"fluid speedup {result['speedup']:.1f}x "
                        f"< required {MIN_SPEEDUP:.0f}x")
    if not result["verdict_agreement"]:
        problems.append(
            "backends disagree on the reference cell: packet "
            f"contending={result['packet_contending']} vs fluid "
            f"contending={result['fluid_contending']}")
    if BASELINE.exists():
        with open(BASELINE) as f:
            base = json.load(f)
        base_norm = (base["packet_events_per_s"]
                     / base["engine_events_per_s"])
        norm = (result["packet_events_per_s"]
                / result["engine_events_per_s"])
        floor = base_norm * (1.0 - MAX_NORMALIZED_DROP)
        if norm < floor:
            problems.append(
                f"packet stack throughput regressed: "
                f"{result['packet_events_per_s']:.0f} scenario-events/s "
                f"at {result['engine_events_per_s']:.0f} raw events/s "
                f"(normalized {norm:.4f}) < {floor:.4f} "
                f"(baseline {base_norm:.4f} - 20%)")
    else:
        problems.append(f"no baseline at {BASELINE} (run "
                        "--write-baseline first)")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="fail on speedup/regression thresholds "
                             "against the committed baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help=f"refresh {BASELINE.name} from this run")
    parser.add_argument("--out", default=str(RESULT),
                        help="result JSON path (default: BENCH_6.json)")
    args = parser.parse_args(argv)

    result = measure()
    out = Path(args.out)
    with open(out, "w") as f:
        json.dump(result, f, indent=2, sort_keys=True)
        f.write("\n")

    print(f"engine:  {result['engine_events_per_s']:>12,.0f} events/s "
          "(bare loop)")
    print(f"packet:  {result['packet_scenario_s']:>9.2f} s/scenario  "
          f"{result['packet_events_per_s']:>12,.0f} events/s")
    print(f"fluid:   {result['fluid_scenario_s']:>9.3f} s/scenario  "
          f"{result['fluid_scenarios_per_s']:.2f} envelope cells/s")
    print(f"speedup: {result['speedup']:.1f}x   verdict agreement: "
          f"{result['verdict_agreement']}")
    print(f"wrote {out}")

    if args.write_baseline:
        with open(BASELINE, "w") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {BASELINE}")

    if args.check:
        problems = check(result)
        for p in problems:
            print(f"FAIL: {p}", file=sys.stderr)
        if problems:
            return 1
        print("check passed: speedup >= "
              f"{MIN_SPEEDUP:.0f}x, packet throughput within 20% of "
              "baseline, verdicts agree")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
