"""Merge idempotency: concurrent pulls of the same content-addressed
objects must converge to one readable copy per fingerprint.

This is the property the whole cluster fabric leans on -- a stolen
task's replica, a re-dispatched shard, and a local recomputation can
all land the same object at the same time, and the store must end up
with exactly one index entry and an unbroken object either way.
"""

import json
import pickle
import threading

import pytest

from repro.cluster import collect_metrics, pull_objects
from repro.errors import ClusterError
from repro.serve import ServeError
from repro.store import ArtifactStore
from repro.store.fingerprint import fingerprint


class FakeNodeClient:
    """Duck-typed stand-in for :class:`ServeClient` (fetch side)."""

    def __init__(self, objects, host="fake", port=0):
        self.objects = objects
        self.host = host
        self.port = port
        self.fetches = 0

    def fetch_store(self, key):
        self.fetches += 1
        try:
            return self.objects[key]
        except KeyError:
            raise ServeError(404, f"no store object {key[:16]}...")

    def metrics(self):
        raise ServeError(0, "unreachable")


def _objects(n, tag=""):
    """n content-addressed (key, pickled-bytes) pairs."""
    out = {}
    for i in range(n):
        payload = {"value": i, "tag": tag}
        key = fingerprint(payload, kind="test-object")
        out[key] = pickle.dumps(payload, protocol=4)
    return out


class TestPullObjects:
    def test_pull_writes_byte_identical_objects(self, tmp_path):
        objects = _objects(4)
        store = ArtifactStore(tmp_path / "store")
        client = FakeNodeClient(objects)
        pulled = pull_objects(client, store, list(objects))
        assert pulled == 4
        for key, data in objects.items():
            assert store.get_bytes(key) == data
            assert store.get(key) == pickle.loads(data)

    def test_pull_skips_keys_already_local(self, tmp_path):
        objects = _objects(3)
        store = ArtifactStore(tmp_path / "store")
        client = FakeNodeClient(objects)
        pull_objects(client, store, list(objects))
        fetches = client.fetches
        assert pull_objects(client, store, list(objects)) == 0
        assert client.fetches == fetches, "second pull must not fetch"

    def test_missing_remote_key_raises_serve_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        client = FakeNodeClient({})
        with pytest.raises(ServeError):
            pull_objects(client, store, [fingerprint("x", kind="t")])

    def test_corrupt_transfer_raises_and_writes_nothing(self, tmp_path):
        key = fingerprint("corrupt", kind="t")
        store = ArtifactStore(tmp_path / "store")
        client = FakeNodeClient({key: b"\x80\x04 truncated garbage"})
        with pytest.raises(ClusterError):
            pull_objects(client, store, [key])
        assert key not in store


class TestConcurrentMerge:
    N_THREADS = 8

    def test_concurrent_pulls_of_overlapping_keys(self, tmp_path):
        """Many pullers, one store, overlapping key sets: one index
        entry per fingerprint, every object readable, index not torn."""
        objects = _objects(12)
        keys = list(objects)
        root = tmp_path / "store"
        errors = []
        barrier = threading.Barrier(self.N_THREADS)

        def puller(offset):
            try:
                # Each thread gets its own store handle (its own index
                # cache), like separate coordinator/scheduler actors.
                store = ArtifactStore(root)
                client = FakeNodeClient(objects)
                barrier.wait(timeout=10)
                rotated = keys[offset:] + keys[:offset]
                pull_objects(client, store, rotated)
            except Exception as exc:  # surface in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=puller, args=(i,))
                   for i in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        store = ArtifactStore(root)
        entries = store.entries()
        assert sorted(entries) == sorted(keys), \
            "exactly one index entry per fingerprint"
        for key, data in objects.items():
            assert store.get_bytes(key) == data
        with open(root / "index.json") as f:
            json.load(f)  # the index itself must never be torn

    def test_concurrent_put_bytes_same_key(self, tmp_path):
        """The worst case: every writer lands the *same* fingerprint."""
        [(key, data)] = _objects(1).items()
        root = tmp_path / "store"
        errors = []
        barrier = threading.Barrier(self.N_THREADS)

        def writer():
            try:
                store = ArtifactStore(root)
                barrier.wait(timeout=10)
                for _ in range(5):
                    store.put_bytes(key, data, kind="test")
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=writer)
                   for _ in range(self.N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        store = ArtifactStore(root)
        assert list(store.entries()) == [key]
        assert store.get_bytes(key) == data
        assert store.get(key) == pickle.loads(data)


class TestCollectMetrics:
    class MetricsClient:
        def __init__(self, snapshot):
            self._snapshot = snapshot

        def metrics(self):
            return self._snapshot

    def test_merges_counters_and_skips_unreachable(self):
        a = self.MetricsClient(
            {"serve.jobs_executed": {"type": "counter", "value": 3.0},
             "serve.queue_depth": {"type": "gauge", "value": 2.0}})
        b = self.MetricsClient(
            {"serve.jobs_executed": {"type": "counter", "value": 4.0},
             "serve.queue_depth": {"type": "gauge", "value": 5.0}})
        dead = FakeNodeClient({})
        merged = collect_metrics([a, dead, b])
        assert merged["serve.jobs_executed"]["value"] == 7.0
        assert merged["serve.queue_depth"]["value"] == 5.0
        assert merged["cluster.nodes_reporting"]["value"] == 2.0
