"""Fluid flow laws: per-flow rate dynamics for every CCA and source.

Each flow exposes ``rate`` (its current sending rate, bytes/second) and
``advance(now, dt, fb)``, where ``fb`` is a :class:`Feedback` carrying
what the bottleneck did to the flow this tick.  Window-based CCAs keep
a congestion window in bytes and derive the rate as ``cwnd / rtt``
with ``rtt = base_rtt + queue_delay`` -- which is exactly what couples
them to the probe's pulses: an up-pulse grows the queue, the queue
grows every elastic flow's RTT, and their rates respond within one
tick.  Inelastic sources ignore the feedback.

Loss feedback is edge-triggered with a one-RTT refractory per flow
(one multiplicative decrease per overflow episode), mirroring how a
packet CCA reacts once per loss event, not once per lost packet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..units import DEFAULT_MSS, mbps

#: Cross-traffic rates mirrored from :mod:`repro.traffic.mix`.
CBR_CROSS_RATE = mbps(12)
POISSON_OFFERED_RATE = 30.0 * 50_000.0  # flows/s x mean size

#: BBR's pacing-gain cycle (one phase per RTT).
BBR_GAINS = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)


@dataclass
class Feedback:
    """What one tick at the bottleneck looked like to a flow.

    Attributes:
        delivered_rate: the flow's service rate this tick (bytes/s).
        queue_delay: bottleneck queueing delay (seconds).
        loss: the flow lost bytes to a drop this tick.
        ecn_mark: the flow's bytes were ECN-marked this tick.
    """

    delivered_rate: float
    queue_delay: float
    loss: bool
    ecn_mark: bool


class FluidFlow:
    """Base: a rate source that may react to feedback."""

    def __init__(self, flow_id: str, base_rtt: float, start: float = 0.0):
        self.flow_id = flow_id
        self.base_rtt = base_rtt
        self.start = start
        self.rate = 0.0
        self.delivered_bytes = 0.0

    def advance(self, now: float, dt: float, fb: Feedback) -> None:
        self.delivered_bytes += fb.delivered_rate * dt


class WindowFlow(FluidFlow):
    """AIMD-family window dynamics: ``rate = cwnd / rtt``.

    ``kind`` selects the increase/decrease law:

    - ``reno`` / ``newreno`` / ``dctcp``: one MSS per RTT, halve on
      loss (DCTCP without ECN marks degenerates to Reno; with marks it
      cuts by a gentler fixed fraction, standing in for the alpha
      estimator).
    - ``cubic``: the cubic window curve around the last loss point
      (C = 0.4, beta = 0.7, MSS units).
    - ``vegas`` / ``copa`` / ``ledbat``: delay-based additive control
      around a target amount of self-induced queueing.
    """

    def __init__(self, flow_id: str, base_rtt: float, kind: str = "reno",
                 start: float = 0.0, mss: int = DEFAULT_MSS):
        super().__init__(flow_id, base_rtt, start=start)
        self.kind = kind
        self.mss = float(mss)
        self.cwnd = 10.0 * self.mss
        self._last_cut = float("-inf")
        # Cubic state (MSS units).
        self._w_max = self.cwnd / self.mss
        self._epoch_start: float | None = None
        # Delay-based targets (seconds of self-queueing).
        self._delay_lo, self._delay_hi = {
            "vegas": (0.004, 0.010),
            "copa": (0.010, 0.025),
            "ledbat": (0.060, 0.100),
        }.get(kind, (0.0, 0.0))

    def _cut(self, now: float, rtt: float, factor: float) -> None:
        if now - self._last_cut < rtt:
            return
        self._last_cut = now
        self._w_max = self.cwnd / self.mss
        self._epoch_start = None
        self.cwnd = max(2.0 * self.mss, self.cwnd * factor)

    def advance(self, now: float, dt: float, fb: Feedback) -> None:
        super().advance(now, dt, fb)
        rtt = self.base_rtt + fb.queue_delay
        if fb.loss:
            beta = 0.7 if self.kind == "cubic" else 0.5
            self._cut(now, rtt, beta)
        elif fb.ecn_mark and self.kind == "dctcp":
            self._cut(now, rtt, 0.8)
        if self.kind == "cubic":
            if self._epoch_start is None:
                self._epoch_start = now
            w0 = self.cwnd / self.mss
            k = ((self._w_max * 0.3) / 0.4) ** (1.0 / 3.0)
            t = now - self._epoch_start + dt
            w = 0.4 * (t - k) ** 3 + self._w_max
            self.cwnd = max(2.0 * self.mss,
                            max(w, w0) * self.mss)
        elif self._delay_hi > 0.0:
            # Delay-based: grow below the low watermark, shrink above
            # the high one, hold in between.
            if fb.queue_delay < self._delay_lo:
                self.cwnd += self.mss * dt / rtt
            elif fb.queue_delay > self._delay_hi:
                self.cwnd = max(2.0 * self.mss,
                                self.cwnd - self.mss * dt / rtt)
        else:
            self.cwnd += self.mss * dt / rtt
        self.rate = self.cwnd / rtt


class BbrFlow(FluidFlow):
    """BBRv1 state machine (:class:`repro.cca.bbr.BbrCca`) as a fluid law.

    STARTUP's 2.89x gain until the bandwidth estimate plateaus, DRAIN
    to one BDP, then the 8-phase PROBE_BW gain cycle around a
    windowed-max bandwidth estimate, with ``cwnd = 2 x bw x rtprop``
    capping inflight.  The 0.75 phase exits as soon as inflight drains
    to one BDP -- the queue-state coupling through which the probe's
    pulses entrain the cycle (the source of BBR's measured elasticity
    at short RTTs).  Loss is ignored, as in BBRv1.
    """

    STARTUP_GAIN = 2.885

    def __init__(self, flow_id: str, base_rtt: float, start: float = 0.0,
                 mss: int = DEFAULT_MSS):
        super().__init__(flow_id, base_rtt, start=start)
        self.mss = float(mss)
        self.rate = 10.0 * self.mss / base_rtt
        self._bw_samples: list[tuple[float, float]] = []
        self._bw = self.rate
        self._state = "STARTUP"
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._next_round = start + base_rtt
        self._cycle_index = 0
        self._cycle_stamp = start

    def _update_bw(self, now: float, delivered: float) -> None:
        window = max(10.0 * self.base_rtt, 1.0)
        samples = self._bw_samples
        samples.append((now, delivered))
        while samples and samples[0][0] < now - window:
            samples.pop(0)
        self._bw = max(v for _, v in samples)

    def advance(self, now: float, dt: float, fb: Feedback) -> None:
        super().advance(now, dt, fb)
        self._update_bw(now, fb.delivered_rate)
        rtt = self.base_rtt + fb.queue_delay
        # Quasi-static inflight: bytes in the pipe plus this flow's
        # share of the queue, i.e. sending rate times current RTT.
        inflight = self.rate * rtt
        bdp = self._bw * self.base_rtt

        if self._state == "STARTUP":
            gain = self.STARTUP_GAIN
            if now >= self._next_round:
                self._next_round = now + rtt
                if self._bw > self._full_bw * 1.25:
                    self._full_bw = self._bw
                    self._full_bw_rounds = 0
                else:
                    self._full_bw_rounds += 1
                    if self._full_bw_rounds >= 3:
                        self._state = "DRAIN"
        if self._state == "DRAIN":
            gain = 1.0 / self.STARTUP_GAIN
            if inflight <= bdp:
                self._state = "PROBE_BW"
                self._cycle_index = 1  # the 0.75 phase, as after DRAIN
                self._cycle_stamp = now
        if self._state == "PROBE_BW":
            gain = BBR_GAINS[self._cycle_index]
            advance = now - self._cycle_stamp > self.base_rtt
            if gain == 0.75:
                advance = advance or inflight <= bdp
            if advance:
                self._cycle_index = (self._cycle_index + 1) % len(BBR_GAINS)
                self._cycle_stamp = now
                gain = BBR_GAINS[self._cycle_index]

        pacing = gain * self._bw
        cwnd = max(2.0 * bdp, 4.0 * self.mss)
        # Window cap: with inflight = rate x rtt pinned at cwnd the
        # flow is ACK-clocked, so queue-delay growth directly lowers
        # its sending rate -- the coupling that makes BBR respond to
        # the probe's pulses.
        self.rate = max(min(pacing, cwnd / rtt), 2.0 * self.mss / rtt)


class CbrFlow(FluidFlow):
    """Constant-rate inelastic source."""

    def __init__(self, flow_id: str, base_rtt: float, rate: float,
                 start: float = 0.0):
        super().__init__(flow_id, base_rtt, start=start)
        self.rate = rate


class PoissonFlow(FluidFlow):
    """Aggregate of Poisson short flows as a piecewise-constant rate.

    Each 200 ms window offers ``N x mean_size`` bytes where N is
    Poisson-distributed, reproducing the aggregate's mean load and its
    burstiness scale without per-flow state.  Inelastic by
    construction (the real aggregate's elasticity is bounded by flow
    lifetimes far shorter than a pulse period).
    """

    WINDOW = 0.2

    def __init__(self, flow_id: str, base_rtt: float, seed: int = 0,
                 offered: float = POISSON_OFFERED_RATE, start: float = 0.0):
        super().__init__(flow_id, base_rtt, start=start)
        self._rng = np.random.default_rng(seed)
        self._offered = offered
        self._mean_arrivals = offered * self.WINDOW / 50_000.0
        self._next_draw = start
        self.rate = offered

    def advance(self, now: float, dt: float, fb: Feedback) -> None:
        super().advance(now, dt, fb)
        if now >= self._next_draw:
            n = self._rng.poisson(self._mean_arrivals)
            self.rate = n * 50_000.0 / self.WINDOW
            self._next_draw = now + self.WINDOW


class VideoFlow(FluidFlow):
    """Duty-cycled ABR video: elastic chunk fetches, idle between.

    While fetching a chunk the flow behaves like a window flow
    (elastic); once the playback buffer is full it goes idle until a
    chunk's worth drains.  The bitrate follows a buffer-level ladder
    as in :class:`repro.traffic.video.VideoStream`.
    """

    LADDER = tuple(mbps(b) for b in (0.6, 1.5, 3.0, 4.5, 8.0, 16.0))
    CHUNK_SECONDS = 2.0
    MAX_BUFFER = 12.0
    LOW_RESERVOIR, HIGH_RESERVOIR = 4.0, 10.0

    def __init__(self, flow_id: str, base_rtt: float, start: float = 0.0,
                 mss: int = DEFAULT_MSS):
        super().__init__(flow_id, base_rtt, start=start)
        self.mss = float(mss)
        self.cwnd = 10.0 * self.mss
        self._last_cut = float("-inf")
        self._buffer = 0.0
        self._chunk_remaining = self._pick_chunk()

    def _pick_chunk(self) -> float:
        if self._buffer < self.LOW_RESERVOIR:
            bitrate = self.LADDER[0]
        elif self._buffer >= self.HIGH_RESERVOIR:
            bitrate = self.LADDER[-1]
        else:
            frac = ((self._buffer - self.LOW_RESERVOIR)
                    / (self.HIGH_RESERVOIR - self.LOW_RESERVOIR))
            bitrate = self.LADDER[
                min(len(self.LADDER) - 1,
                    int(frac * (len(self.LADDER) - 1)) + 1)]
        return bitrate * self.CHUNK_SECONDS

    def advance(self, now: float, dt: float, fb: Feedback) -> None:
        super().advance(now, dt, fb)
        self._buffer = max(0.0, self._buffer - dt)
        rtt = self.base_rtt + fb.queue_delay
        if self._chunk_remaining > 0.0:
            self._chunk_remaining -= fb.delivered_rate * dt
            if fb.loss and now - self._last_cut >= rtt:
                self._last_cut = now
                self.cwnd = max(2.0 * self.mss, self.cwnd * 0.5)
            else:
                self.cwnd += self.mss * dt / rtt
            if self._chunk_remaining <= 0.0:
                self._buffer = min(self.MAX_BUFFER,
                                   self._buffer + self.CHUNK_SECONDS)
            self.rate = self.cwnd / rtt
        else:
            self.rate = 0.0
            if self._buffer < self.HIGH_RESERVOIR:
                self._chunk_remaining = self._pick_chunk()


def make_flow_cca(kind: str, flow_id: str, base_rtt: float,
                  link_rate: float, rate_frac: float = 0.3,
                  start: float = 0.0) -> FluidFlow:
    """Fluid flow for one :data:`repro.qa.scenario.FLOW_CCAS` entry."""
    if kind == "cbr":
        return CbrFlow(flow_id, base_rtt,
                       rate=max(10_000.0, rate_frac * link_rate),
                       start=start)
    if kind == "bbr":
        return BbrFlow(flow_id, base_rtt, start=start)
    if kind in ("reno", "newreno", "cubic", "vegas", "copa", "dctcp",
                "ledbat"):
        return WindowFlow(flow_id, base_rtt, kind=kind, start=start)
    raise ConfigError(f"no fluid law for CCA {kind!r}")


def make_cross_traffic(kind: str, flow_id: str, base_rtt: float,
                       seed: int = 0) -> FluidFlow | None:
    """Fluid counterpart of :func:`repro.traffic.mix.make_cross_traffic`."""
    if kind == "none":
        return None
    if kind == "reno":
        return WindowFlow(flow_id, base_rtt, kind="reno")
    if kind == "bbr":
        return BbrFlow(flow_id, base_rtt)
    if kind == "cbr":
        return CbrFlow(flow_id, base_rtt, rate=CBR_CROSS_RATE)
    if kind == "poisson":
        return PoissonFlow(flow_id, base_rtt, seed=seed)
    if kind == "video":
        return VideoFlow(flow_id, base_rtt)
    raise ConfigError(f"no fluid law for cross traffic {kind!r}")
