"""Tests for the resumable scheduler and fault-tolerant pool path.

Covers the ISSUE 3 acceptance criterion end to end: a campaign
interrupted mid-run resumes and produces a byte-identical
``CampaignResult`` to an uninterrupted run at the same seed,
re-executing only the unfinished paths.
"""

import pickle

import pytest

from repro.core.campaign import Campaign, FailedPath
from repro.errors import ConfigError
from repro.obs.metrics import REGISTRY
from repro.runtime import (FaultPolicy, InjectedFault, ParallelExecutor,
                           TaskOutcome, fault_rate)
from repro.runtime.pool import _maybe_inject_fault
from repro.store import ArtifactStore, ResumableScheduler, fingerprint


def double(x):
    return 2 * x


def fragile(x):
    if x < 0:
        raise ValueError(f"cannot handle {x}")
    return x + 1


def keys_for(values, kind="item"):
    return [fingerprint(v, kind=kind) for v in values]


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "store")


@pytest.fixture(autouse=True)
def _reset_metrics():
    REGISTRY.reset()
    yield
    REGISTRY.reset()


class TestFaultPolicy:
    def test_invalid_policies_rejected(self):
        with pytest.raises(ConfigError):
            FaultPolicy(retries=-1)
        with pytest.raises(ConfigError):
            FaultPolicy(timeout_s=0)
        with pytest.raises(ConfigError):
            FaultPolicy(backoff_factor=0.5)

    def test_bad_fault_rate_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "lots")
        with pytest.raises(ConfigError):
            fault_rate()
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.5")
        with pytest.raises(ConfigError):
            fault_rate()

    def test_injection_deterministic(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.5")

        def fails(label, attempt):
            try:
                _maybe_inject_fault(label, attempt)
                return False
            except InjectedFault:
                return True

        first = [fails(f"t{i}", 0) for i in range(64)]
        second = [fails(f"t{i}", 0) for i in range(64)]
        assert first == second           # deterministic per label
        assert any(first) and not all(first)


class TestRunTasks:
    def test_outcomes_ordered_and_ok(self):
        with ParallelExecutor(workers=1) as ex:
            outcomes = ex.run_tasks(double, [1, 2, 3])
        assert [o.value for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_failures_quarantined_not_raised(self):
        with ParallelExecutor(workers=1) as ex:
            outcomes = ex.run_tasks(
                fragile, [3, -1, 5],
                policy=FaultPolicy(retries=1, backoff_s=0.0))
        assert [o.ok for o in outcomes] == [True, False, True]
        bad = outcomes[1]
        assert bad.error_type == "ValueError"
        assert "cannot handle -1" in bad.error
        assert bad.attempts == 2
        assert REGISTRY.counter("pool.task_failures").value == 1
        assert REGISTRY.counter("pool.retries").value == 1

    def test_pool_mode_matches_serial(self):
        with ParallelExecutor(workers=1) as serial, \
                ParallelExecutor(workers=2, chunk_size=1) as pool:
            a = serial.run_tasks(double, list(range(10)))
            b = pool.run_tasks(double, list(range(10)))
        assert [o.value for o in a] == [o.value for o in b]

    def test_injected_faults_recovered_by_retries(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.3")
        with ParallelExecutor(workers=1) as ex:
            outcomes = ex.run_tasks(
                double, list(range(24)),
                policy=FaultPolicy(retries=6, backoff_s=0.0))
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [2 * x for x in range(24)]
        assert REGISTRY.counter("pool.injected_faults").value > 0

    def test_timeout_enforced(self):
        import time

        def spin(x):
            deadline = time.time() + 5.0
            while time.time() < deadline:
                pass
            return x

        with ParallelExecutor(workers=1) as ex:
            outcome = ex.run_tasks(
                spin, [1],
                policy=FaultPolicy(retries=0, timeout_s=0.2))[0]
        assert not outcome.ok
        assert outcome.error_type == "TaskTimeout"
        assert REGISTRY.counter("pool.timeouts").value == 1

    def test_label_mismatch_rejected(self):
        with ParallelExecutor(workers=1) as ex:
            with pytest.raises(ConfigError):
                ex.run_tasks(double, [1, 2], labels=["only-one"])


class TestScheduler:
    def test_first_run_computes_second_run_hits(self, store):
        values = [1, 2, 3, 4]
        keys = keys_for(values)
        run_key = fingerprint("run", kind="campaign")
        first = ResumableScheduler(store, run_key).run(
            double, values, keys, workers=1)
        assert first.results == [2, 4, 6, 8]
        assert (first.hits, first.computed) == (0, 4)
        second = ResumableScheduler(store, run_key).run(
            double, values, keys, workers=1)
        assert second.results == first.results
        assert (second.hits, second.computed) == (4, 0)
        assert REGISTRY.counter("store.hits").value == 4

    def test_partial_completion_resumes(self, store):
        values = [1, 2, 3, 4, 5]
        keys = keys_for(values)
        run_key = fingerprint("run2", kind="campaign")
        # First run completes only a prefix (simulating interruption).
        ResumableScheduler(store, run_key).run(
            double, values[:2], keys[:2], workers=1)
        report = ResumableScheduler(store, run_key, resume=True).run(
            double, values, keys, workers=1)
        assert report.results == [2, 4, 6, 8, 10]
        assert (report.hits, report.computed) == (2, 3)

    def test_interrupt_mid_run_checkpoints(self, store):
        values = [10, 20, 30]
        keys = keys_for(values)
        run_key = fingerprint("run3", kind="campaign")

        calls = []

        def interrupting_progress(done, total):
            calls.append(done)
            if done == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            ResumableScheduler(store, run_key).run(
                double, values, keys, workers=1,
                progress=interrupting_progress)
        manifest = ResumableScheduler(store, run_key,
                                      resume=True).manifest
        assert manifest["status"] == "running"  # reloaded for resume
        report = ResumableScheduler(store, run_key, resume=True).run(
            double, values, keys, workers=1)
        assert report.results == [20, 40, 60]
        assert report.hits >= 1                # checkpointed work kept
        assert report.computed == len(values) - report.hits

    def test_failure_quarantined_and_skipped_on_resume(self, store):
        values = [2, -7, 4]
        keys = keys_for(values)
        run_key = fingerprint("run4", kind="campaign")
        policy = FaultPolicy(retries=1, backoff_s=0.0)
        first = ResumableScheduler(store, run_key).run(
            fragile, values, keys, workers=1, policy=policy)
        assert first.results == [3, None, 5]
        assert len(first.failed) == 1
        assert first.failed[0].error_type == "ValueError"
        assert REGISTRY.counter("store.quarantined").value == 1
        # resume=True honors the quarantine without re-running.
        resumed = ResumableScheduler(store, run_key, resume=True).run(
            fragile, values, keys, workers=1, policy=policy)
        assert resumed.resumed == 1
        assert resumed.computed == 0
        assert len(resumed.failed) == 1
        # resume=False retries the quarantined task afresh: it fails
        # again (a new task_failure), rather than being skipped.
        failures_before = REGISTRY.counter("pool.task_failures").value
        fresh = ResumableScheduler(store, run_key).run(
            fragile, values, keys, workers=1, policy=policy)
        assert fresh.resumed == 0
        assert len(fresh.failed) == 1
        assert REGISTRY.counter("pool.task_failures").value \
            == failures_before + 1

    def test_duplicate_keys_rejected(self, store):
        run_key = fingerprint("run5", kind="campaign")
        with pytest.raises(ConfigError):
            ResumableScheduler(store, run_key).run(
                double, [1, 2], [keys_for([1])[0]] * 2, workers=1)

    def test_stale_manifest_ignored(self, store):
        run_key = fingerprint("run6", kind="campaign")
        other_key = fingerprint("other", kind="campaign")
        ResumableScheduler(store, other_key).run(
            double, [1], keys_for([1]), workers=1)
        # Resuming a different run_key must not adopt that manifest.
        sched = ResumableScheduler(store, run_key, resume=True)
        assert sched.manifest["done"] == {}


class TestCampaignResume:
    """The ISSUE 3 acceptance criterion, at campaign level."""

    N_PATHS, SEED, DURATION = 3, 2, 4.0

    def fresh_campaign(self):
        return Campaign(n_paths=self.N_PATHS, seed=self.SEED,
                        duration=self.DURATION)

    def test_interrupted_campaign_resumes_byte_identical(self, tmp_path):
        golden = self.fresh_campaign().run(workers=1, store=None)

        store = ArtifactStore(tmp_path / "store")

        def interrupt_after_one(done, total):
            if done == 1:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            self.fresh_campaign().run(workers=1, store=store,
                                      progress=interrupt_after_one)
        checkpointed = store.stat()["by_kind"]["path"]["entries"]
        assert checkpointed == 1               # exactly the finished path

        REGISTRY.reset()
        resumed = self.fresh_campaign().run(workers=1, store=store,
                                            resume=True)
        # Only the unfinished paths re-executed.
        assert REGISTRY.counter("store.hits").value == 1
        assert REGISTRY.counter("pool.tasks").value \
            == self.N_PATHS - checkpointed
        # Byte-identical to the uninterrupted run.  (Compared per
        # path: pickling the whole list encodes cross-object string
        # sharing that legitimately differs between freshly-computed
        # and store-loaded objects of identical value.)
        assert resumed == golden
        assert [pickle.dumps(r) for r in resumed.results] \
            == [pickle.dumps(r) for r in golden.results]

    def test_cached_rerun_executes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        first = self.fresh_campaign().run(workers=1, store=store)
        REGISTRY.reset()
        second = self.fresh_campaign().run(workers=1, store=store)
        assert REGISTRY.counter("pool.tasks").value == 0
        assert REGISTRY.counter("store.hits").value == self.N_PATHS
        assert second == first
        assert [pickle.dumps(r) for r in second.results] \
            == [pickle.dumps(r) for r in first.results]

    def test_fault_injected_run_converges_to_golden(self, tmp_path,
                                                    monkeypatch):
        golden = self.fresh_campaign().run(workers=1, store=None)
        monkeypatch.setenv("REPRO_FAULT_RATE", "0.3")
        store = ArtifactStore(tmp_path / "store")
        faulted = self.fresh_campaign().run(
            workers=1, store=store,
            policy=FaultPolicy(retries=8, backoff_s=0.0))
        assert not faulted.failed
        assert faulted == golden
        assert [pickle.dumps(r) for r in faulted.results] \
            == [pickle.dumps(r) for r in golden.results]

    def test_permanent_failure_quarantines_not_raises(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_RATE", "1.0")
        store = ArtifactStore(tmp_path / "store")
        result = self.fresh_campaign().run(
            workers=1, store=store,
            policy=FaultPolicy(retries=1, backoff_s=0.0))
        assert result.results == []
        assert len(result.failed) == self.N_PATHS
        assert all(isinstance(f, FailedPath) for f in result.failed)
        assert all(f.error_type == "InjectedFault"
                   for f in result.failed)

    def test_default_path_unchanged_without_store(self):
        # No store: the raising fast path, no cache artifacts.
        result = self.fresh_campaign().run(workers=1, store=None)
        assert len(result.results) == self.N_PATHS
        assert result.failed == []
