"""Fluid bottleneck models for the eight qdisc archetypes.

The workhorse is :class:`FifoBottleneck`: arrivals are stored as
per-tick *cohorts* (numpy vectors over flows) and service drains
cohorts strictly in order, so the service composition at time ``t``
equals the arrival composition at time ``t - queue_delay`` -- the
property that makes the Nimbus ẑ estimator read the *cross* arrival
rate rather than an echo of the probe's own pulse.  Tail drop removes
bytes from the newest (arriving) cohort, which is exactly what a
droptail queue does.

Fair queueing (``fq``/``sfq``) keeps per-flow backlogs and serves them
by water-filling; shapers (``tbf``/``policer``) run the FIFO at 90% of
the link rate, matching :func:`repro.qa.scenario.build_qdisc`; ``htb``
with a single active class borrows up to the full rate and degenerates
to FIFO.  AQMs (``red``/``codel``) layer early-drop/mark signals on
the FIFO.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ConfigError
from ..medium.bianchi import airtime_shares, expected_service_time
from ..medium.config import MediumSpec
from ..units import DEFAULT_PACKET_SIZE


class TickResult:
    """What one service tick did, flow-indexed numpy vectors."""

    __slots__ = ("served", "dropped", "marked", "queue_delay")

    def __init__(self, served: np.ndarray, dropped: np.ndarray,
                 marked: np.ndarray, queue_delay: float):
        self.served = served
        self.dropped = dropped
        self.marked = marked
        self.queue_delay = queue_delay


class FifoBottleneck:
    """Shared FIFO with cohort-accurate composition delay.

    Args:
        n_flows: number of flows (vector dimension).
        rate: service rate (bytes/second).
        buffer_bytes: tail-drop limit on total backlog.
    """

    def __init__(self, n_flows: int, rate: float, buffer_bytes: float):
        if rate <= 0 or buffer_bytes <= 0:
            raise ConfigError("need positive rate and buffer")
        self.n = n_flows
        self.rate = rate
        self.buffer_bytes = buffer_bytes
        self._cohorts: deque[tuple[float, np.ndarray]] = deque()
        self.backlog = 0.0
        self.accepted_bytes = 0.0
        self.served_bytes = 0.0
        self.dropped_bytes = 0.0
        self.marked_bytes = 0.0

    # Subclass hook: fraction of arriving bytes to early-drop (RED) or
    # an ECN share to mark; the base FIFO never early-drops.
    def _early_action(self, arrivals: np.ndarray, dt: float
                      ) -> tuple[float, float]:
        return 0.0, 0.0

    def tick(self, arrivals: np.ndarray, dt: float) -> TickResult:
        dropped = np.zeros(self.n)
        marked = np.zeros(self.n)
        total_in = float(arrivals.sum())
        accepted = arrivals
        if total_in > 0.0:
            drop_frac, mark_frac = self._early_action(arrivals, dt)
            if mark_frac > 0.0:
                marked += arrivals * mark_frac
                self.marked_bytes += total_in * mark_frac
            if drop_frac > 0.0:
                dropped += arrivals * drop_frac
                accepted = arrivals * (1.0 - drop_frac)
                total_in = float(accepted.sum())
            # Tail drop: whatever exceeds the buffer comes out of the
            # arriving cohort, proportionally across its flows.
            space = self.buffer_bytes - self.backlog
            if total_in > space:
                keep = max(0.0, space) / total_in
                dropped += accepted * (1.0 - keep)
                accepted = accepted * keep
                total_in = float(accepted.sum())
            if total_in > 0.0:
                self._cohorts.append((total_in, accepted))
                self.backlog += total_in
                self.accepted_bytes += total_in
        drop_total = float(dropped.sum())
        if drop_total > 0.0:
            self.dropped_bytes += drop_total

        served = np.zeros(self.n)
        budget = self.rate * dt
        cohorts = self._cohorts
        while budget > 1e-9 and cohorts:
            size, vec = cohorts[0]
            if size <= budget:
                served += vec
                budget -= size
                self.backlog -= size
                cohorts.popleft()
            else:
                frac = budget / size
                served += vec * frac
                remaining = vec * (1.0 - frac)
                cohorts[0] = (size - budget, remaining)
                self.backlog -= budget
                budget = 0.0
        self.backlog = max(0.0, self.backlog)
        self.served_bytes += float(served.sum())
        return TickResult(served, dropped, marked,
                          self.backlog / self.rate)


class RedBottleneck(FifoBottleneck):
    """FIFO plus RED-style early drop/mark on an EWMA of occupancy."""

    def __init__(self, n_flows: int, rate: float, buffer_bytes: float,
                 ecn: bool = False):
        super().__init__(n_flows, rate, buffer_bytes)
        self.min_thresh = buffer_bytes / 4.0
        self.max_thresh = 3.0 * buffer_bytes / 4.0
        self.max_p = 0.1
        self.ecn = ecn
        self._avg = 0.0

    def _early_action(self, arrivals: np.ndarray, dt: float
                      ) -> tuple[float, float]:
        self._avg += 0.1 * (self.backlog - self._avg)
        if self._avg <= self.min_thresh:
            return 0.0, 0.0
        if self._avg >= self.max_thresh:
            p = self.max_p
        else:
            p = self.max_p * ((self._avg - self.min_thresh)
                              / (self.max_thresh - self.min_thresh))
        return (0.0, p) if self.ecn else (p, 0.0)


class CodelBottleneck(FifoBottleneck):
    """FIFO plus CoDel-style drops while sojourn exceeds the target."""

    TARGET = 0.005
    INTERVAL = 0.1

    def __init__(self, n_flows: int, rate: float, buffer_bytes: float):
        super().__init__(n_flows, rate, buffer_bytes)
        self._above_since: float | None = None
        self._drops = 0
        self._clock = 0.0

    def _early_action(self, arrivals: np.ndarray, dt: float
                      ) -> tuple[float, float]:
        self._clock += dt
        sojourn = self.backlog / self.rate
        if sojourn <= self.TARGET:
            self._above_since = None
            self._drops = 0
            return 0.0, 0.0
        if self._above_since is None:
            self._above_since = self._clock
            return 0.0, 0.0
        interval = self.INTERVAL / max(1.0, self._drops) ** 0.5
        if self._clock - self._above_since >= interval:
            self._above_since = self._clock
            self._drops += 1
            # Drop roughly one packet's worth out of this tick.
            total = float(arrivals.sum())
            if total > 0.0:
                return min(1.0, DEFAULT_PACKET_SIZE / total), 0.0
        return 0.0, 0.0


class FairBottleneck:
    """Per-flow queues served by water-filling (``fq``/``sfq``).

    Composition delay is per-flow and, for an isolated flow, identical
    to a FIFO of its own backlog, so the probe's ẑ alignment carries
    over with the flow's own queue delay.
    """

    def __init__(self, n_flows: int, rate: float, buffer_bytes: float):
        if rate <= 0 or buffer_bytes <= 0:
            raise ConfigError("need positive rate and buffer")
        self.n = n_flows
        self.rate = rate
        self.buffer_bytes = buffer_bytes
        self.queues = np.zeros(n_flows)
        self.accepted_bytes = 0.0
        self.served_bytes = 0.0
        self.dropped_bytes = 0.0
        self.marked_bytes = 0.0

    @property
    def backlog(self) -> float:
        return float(self.queues.sum())

    def tick(self, arrivals: np.ndarray, dt: float) -> TickResult:
        dropped = np.zeros(self.n)
        self.queues += arrivals
        self.accepted_bytes += float(arrivals.sum())
        # Overflow drops from the longest queue (DRR semantics).
        overflow = self.backlog - self.buffer_bytes
        while overflow > 1e-9:
            i = int(self.queues.argmax())
            cut = min(overflow, self.queues[i])
            self.queues[i] -= cut
            dropped[i] += cut
            overflow -= cut
        drop_total = float(dropped.sum())
        if drop_total > 0.0:
            self.dropped_bytes += drop_total
            self.accepted_bytes -= drop_total

        served = np.zeros(self.n)
        budget = self.rate * dt
        while budget > 1e-9:
            active = np.flatnonzero(self.queues > 1e-9)
            if active.size == 0:
                break
            share = budget / active.size
            take = np.minimum(self.queues[active], share)
            self.queues[active] -= take
            served[active] += take
            spent = float(take.sum())
            if spent <= 1e-12:
                break
            budget -= spent
        self.served_bytes += float(served.sum())
        # Queue delay as seen by a flow at its fair share: total
        # backlog over rate is wrong under isolation, so report the
        # *maximum per-flow* sojourn (the probe reads its own via
        # per-flow service; the model uses this only for RTT inflation,
        # which water-filling applies per flow below).
        delay = float(self.queues.max()) / self.rate * \
            max(1, int((self.queues > 1e-9).sum()))
        return TickResult(served, dropped, np.zeros(self.n), delay)

    def flow_delay(self, i: int, recent_rate: float) -> float:
        """Sojourn of flow ``i``'s backlog at its recent service rate."""
        if recent_rate <= 0.0:
            return 0.0
        return float(self.queues[i]) / recent_rate


class PolicerBottleneck:
    """Rate policer: no queue, excess arrivals are dropped."""

    def __init__(self, n_flows: int, rate: float):
        if rate <= 0:
            raise ConfigError("need positive rate")
        self.n = n_flows
        self.rate = rate
        self.backlog = 0.0
        self.accepted_bytes = 0.0
        self.served_bytes = 0.0
        self.dropped_bytes = 0.0
        self.marked_bytes = 0.0

    def tick(self, arrivals: np.ndarray, dt: float) -> TickResult:
        total = float(arrivals.sum())
        budget = self.rate * dt
        if total <= budget or total <= 0.0:
            served = arrivals.copy()
            dropped = np.zeros(self.n)
        else:
            keep = budget / total
            served = arrivals * keep
            dropped = arrivals * (1.0 - keep)
            self.dropped_bytes += float(dropped.sum())
        got = float(served.sum())
        self.accepted_bytes += got
        self.served_bytes += got
        return TickResult(served, dropped, np.zeros(self.n), 0.0)


class ContentionBottleneck:
    """Bianchi-style shared-medium airtime model (the fluid MAC).

    Flows are assigned to ``spec.n_stations`` stations round-robin by
    vector index (matching the packet backend's first-appearance
    order).  Each tick:

    1. Arrivals join per-flow backlogs; each *station's* backlog is
       tail-dropped at ``buffer_bytes`` (per-station buffers, matching
       the packet side's per-station qdiscs).
    2. The set of backlogged stations is the *active* contention set;
       :func:`repro.medium.bianchi.airtime_shares` for their access
       classes gives each a saturation airtime cap.  Unused capacity
       from under-loaded stations is water-filled back to the rest --
       idle stations do not burn airtime they are not contending for.
    3. Per-flow contention delay is the station's backlog sojourn at
       its airtime cap plus the Bianchi expected MAC service time for
       the active set -- the head-of-line access delay a sender feels
       even with an empty queue, which is exactly the feedback-shape
       difference from a FIFO that E16 measures.

    The per-active-set Bianchi solve is cached, so steady states cost
    one dict lookup per tick.
    """

    def __init__(self, n_flows: int, rate: float, buffer_bytes: float,
                 spec: MediumSpec,
                 payload_bytes: float = DEFAULT_PACKET_SIZE):
        if rate <= 0 or buffer_bytes <= 0:
            raise ConfigError("need positive rate and buffer")
        self.n = n_flows
        self.rate = rate
        self.buffer_bytes = buffer_bytes
        self.spec = spec
        self.station_of = np.array(
            [i % spec.n_stations for i in range(n_flows)], dtype=int)
        self.queues = np.zeros(n_flows)
        self.accepted_bytes = 0.0
        self.served_bytes = 0.0
        self.dropped_bytes = 0.0
        self.marked_bytes = 0.0
        self._payload_time = payload_bytes / rate
        self._share_cache: dict[tuple, tuple] = {}
        self._flow_delay = np.zeros(n_flows)

    @property
    def backlog(self) -> float:
        return float(self.queues.sum())

    def _station_backlogs(self) -> np.ndarray:
        out = np.zeros(self.spec.n_stations)
        np.add.at(out, self.station_of, self.queues)
        return out

    def _solve(self, active: tuple[int, ...]) -> tuple:
        """(per-active-station rate caps, MAC access delay) -- cached."""
        cached = self._share_cache.get(active)
        if cached is None:
            classes = [self.spec.station_class(s) for s in active]
            shares = airtime_shares(classes, self._payload_time)
            caps = tuple(share * self.rate for share in shares)
            access = tuple(
                expected_service_time(classes, self._payload_time,
                                      station=k)
                for k in range(len(active)))
            cached = (caps, access)
            self._share_cache[active] = cached
        return cached

    def tick(self, arrivals: np.ndarray, dt: float) -> TickResult:
        dropped = np.zeros(self.n)
        self.queues += arrivals
        self.accepted_bytes += float(arrivals.sum())
        backlogs = self._station_backlogs()
        # Per-station tail drop, proportional across the station's flows.
        for s in np.flatnonzero(backlogs > self.buffer_bytes):
            flows = np.flatnonzero(self.station_of == s)
            over = backlogs[s] - self.buffer_bytes
            keep = self.buffer_bytes / backlogs[s]
            dropped[flows] += self.queues[flows] * (1.0 - keep)
            self.queues[flows] *= keep
            backlogs[s] -= over
        drop_total = float(dropped.sum())
        if drop_total > 0.0:
            self.dropped_bytes += drop_total
            self.accepted_bytes -= drop_total

        served = np.zeros(self.n)
        active = tuple(int(s) for s in np.flatnonzero(backlogs > 1e-9))
        if active:
            caps, access = self._solve(active)
            budgets = {s: caps[k] * dt for k, s in enumerate(active)}
            weights = {s: caps[k] for k, s in enumerate(active)}
            # Water-fill: capacity a station cannot use goes back to
            # the still-backlogged ones in proportion to their shares.
            for _ in range(len(active)):
                spare = 0.0
                busy = []
                for s in list(budgets):
                    take = min(backlogs[s], budgets[s])
                    if backlogs[s] > budgets[s] + 1e-9:
                        busy.append(s)
                    spare += budgets[s] - take
                if spare <= 1e-9 or not busy:
                    break
                weight_sum = sum(weights[s] for s in busy)
                for s in list(budgets):
                    if s in busy:
                        budgets[s] += spare * weights[s] / weight_sum
                    else:
                        budgets[s] = min(budgets[s], backlogs[s])
            for k, s in enumerate(active):
                flows = np.flatnonzero(self.station_of == s)
                station_q = float(self.queues[flows].sum())
                if station_q <= 0.0:
                    continue
                take = min(station_q, budgets[s])
                frac = take / station_q
                served[flows] = self.queues[flows] * frac
                self.queues[flows] *= (1.0 - frac)
                # Sojourn at the station's cap plus MAC access delay.
                cap = max(caps[k], 1e-9)
                self._flow_delay[flows] = (
                    (station_q - take) / cap + access[k])
            self._flow_delay[~np.isin(self.station_of,
                                      np.array(active))] = 0.0
        else:
            self._flow_delay[:] = 0.0
        self.served_bytes += float(served.sum())
        total_cap = sum(self._solve(active)[0]) if active else self.rate
        delay = self.backlog / max(total_cap, 1e-9)
        return TickResult(served, dropped, np.zeros(self.n), delay)

    def flow_delay(self, i: int, recent_rate: float) -> float:
        """Contention delay flow ``i`` feels (recent_rate unused: the
        Bianchi cap, not the measured rate, sets the drain speed)."""
        return float(self._flow_delay[i])


def build_bottleneck(qdisc: str, n_flows: int, rate: float,
                     buffer_bytes: float, ecn: bool = False,
                     medium: MediumSpec | None = None):
    """Fluid bottleneck for one :data:`repro.qa.scenario.QDISC_NAMES`
    entry.  Returns ``(bottleneck, effective_rate)``.

    When ``medium`` names a CSMA/CA spec the bottleneck is a
    :class:`ContentionBottleneck` regardless of ``qdisc``: the fluid
    contention model approximates every per-station discipline as a
    tail-dropped buffer (AQM/shaper dynamics inside one station are
    second-order next to airtime arbitration; the packet backend keeps
    the full per-station qdisc and the agreement oracle bounds the
    gap).
    """
    if medium is not None:
        return ContentionBottleneck(n_flows, rate, buffer_bytes,
                                    medium), rate
    if qdisc in ("droptail", "htb"):
        return FifoBottleneck(n_flows, rate, buffer_bytes), rate
    if qdisc == "red":
        return RedBottleneck(n_flows, rate, buffer_bytes, ecn=ecn), rate
    if qdisc == "codel":
        return CodelBottleneck(n_flows, rate, buffer_bytes), rate
    if qdisc in ("fq", "sfq"):
        return FairBottleneck(n_flows, rate, buffer_bytes), rate
    if qdisc == "tbf":
        eff = 0.9 * rate
        return FifoBottleneck(n_flows, eff, buffer_bytes), eff
    if qdisc == "policer":
        eff = 0.9 * rate
        return PolicerBottleneck(n_flows, eff), eff
    raise ConfigError(f"no fluid model for qdisc {qdisc!r}")
