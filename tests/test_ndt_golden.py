"""Golden regression pin for the Fig. 2 detector on a 5k-flow population.

``tests/data/fig2_golden_5k.json`` holds the exact category counts and
detector-quality tallies produced by the committed generator + pipeline
at a fixed seed.  Any change to flow synthesis, filtering, or the
level-shift detector that moves these numbers must update the golden
file *deliberately* (and explain why in the diff).

The file deliberately pins raw numbers rather than store fingerprints:
fingerprints are salted with ``CODE_VERSION`` / ``STORE_SCHEMA_VERSION``
and would spuriously break on every unrelated version bump.
"""

import json
from pathlib import Path

import pytest

from repro.ndt.pipeline import FlowCategory, run_pipeline
from repro.ndt.stream import run_pipeline_streaming
from repro.ndt.synth import SyntheticNdtGenerator

GOLDEN_PATH = Path(__file__).parent / "data" / "fig2_golden_5k.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text())


@pytest.fixture(scope="module")
def result(golden):
    gen = SyntheticNdtGenerator(seed=golden["seed"])
    flows = gen.generate(golden["n_flows"])
    return run_pipeline(
        flows, min_relative_shift=golden["min_relative_shift"], store=None)


class TestGoldenPopulation:
    def test_category_counts_exact(self, golden, result):
        counts = {cat.value: result.counts.get(cat, 0)
                  for cat in FlowCategory}
        assert counts == golden["counts"]

    def test_level_shift_survivors_exact(self, golden, result):
        assert result.remaining_with_shifts \
            == golden["remaining_with_shifts"]

    def test_detector_quality_exact(self, golden, result):
        assert result.detector_quality() == golden["detector_quality"]

    def test_fractions_exact(self, golden, result):
        assert result.fraction_possible_contention \
            == golden["fraction_possible_contention"]
        assert result.fraction_filtered == golden["fraction_filtered"]

    def test_quality_floor(self, golden):
        """The committed numbers themselves must stay decent: a golden
        update that regresses the detector below these floors needs a
        stronger justification than "the numbers moved"."""
        q = golden["detector_quality"]
        assert q["precision"] >= 0.6
        assert q["recall"] >= 0.95
        assert q["false_negatives"] == 0.0

    def test_streamed_run_matches_golden(self, golden):
        """The streaming path must land on the same pinned numbers."""
        streamed = run_pipeline_streaming(
            golden["n_flows"], seed=golden["seed"],
            chunk_size=1250,
            min_relative_shift=golden["min_relative_shift"],
            workers=1, store=None)
        counts = {cat.value: streamed.counts.get(cat, 0)
                  for cat in FlowCategory}
        assert counts == golden["counts"]
        assert streamed.detector_quality() == golden["detector_quality"]
        assert streamed.fraction_possible_contention \
            == golden["fraction_possible_contention"]
