"""Evaluating the paper's hypothesis from campaign data.

The hypothesis: "there do not remain common scenarios in the modern
Internet in which CCA contention is the dominant factor in determining
flows' bandwidth allocations."  Operationalized: across a path
population, the fraction of paths where an elasticity probe finds
contending cross traffic is small, and shrinks further as isolation
(fair queueing) deployment grows.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.stats import bootstrap_ci
from .campaign import CampaignResult


@dataclass(frozen=True)
class HypothesisEvaluation:
    """The verdict on the paper's hypothesis for one campaign.

    Attributes:
        fraction_contending: measured fraction of paths with contention.
        ci_low / ci_high: bootstrap confidence interval on it.
        threshold: the "common scenario" cutoff the evaluation used.
        supported: fraction (upper CI) below the threshold.
        detector_accuracy: how trustworthy the measurement is, from
            ground truth (synthetic campaigns only).
    """

    fraction_contending: float
    ci_low: float
    ci_high: float
    threshold: float
    supported: bool
    detector_accuracy: float
    n_paths: int

    def describe(self) -> str:
        verdict = "SUPPORTED" if self.supported else "NOT SUPPORTED"
        return (
            f"hypothesis {verdict}: contention on "
            f"{self.fraction_contending:.1%} of {self.n_paths} paths "
            f"(95% CI [{self.ci_low:.1%}, {self.ci_high:.1%}]), "
            f"threshold {self.threshold:.0%}, "
            f"detector accuracy {self.detector_accuracy:.1%}"
        )


def evaluate_hypothesis(campaign: CampaignResult,
                        threshold: float = 0.2,
                        confidence: float = 0.95,
                        seed: int = 0) -> HypothesisEvaluation:
    """Judge the hypothesis on a campaign's results.

    ``threshold`` encodes what "common" means: the hypothesis is
    supported if the upper confidence bound on the contending fraction
    stays below it.
    """
    indicators = [1.0 if r.verdict.contending else 0.0
                  for r in campaign.results]
    point, lo, hi = bootstrap_ci(indicators, confidence=confidence,
                                 seed=seed)
    quality = campaign.detector_quality()
    return HypothesisEvaluation(
        fraction_contending=point,
        ci_low=lo,
        ci_high=hi,
        threshold=threshold,
        supported=hi < threshold,
        detector_accuracy=quality["accuracy"],
        n_paths=len(campaign.results),
    )
