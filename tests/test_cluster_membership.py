"""Membership: cluster-spec parsing and liveness with a fake clock."""

import pytest

from repro.cluster import DEFAULT_PORT, Membership, parse_cluster
from repro.errors import ConfigError


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestParseCluster:
    def test_hosts_ports_and_defaults(self):
        assert parse_cluster("a:8765,b") == [("a", 8765),
                                            ("b", DEFAULT_PORT)]

    def test_sequence_input_and_whitespace(self):
        assert parse_cluster([" a:1 ", "b:2"]) == [("a", 1), ("b", 2)]

    def test_duplicates_collapse(self):
        assert parse_cluster("a:1,a:1,b:2") == [("a", 1), ("b", 2)]

    @pytest.mark.parametrize("spec", ["", ",,", "a:notaport", ":8765",
                                      "a:0", "a:70000"])
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ConfigError):
            parse_cluster(spec)


class TestLiveness:
    def _membership(self, results):
        """``results`` maps node name -> list of probe outcomes
        (dict = healthy, Exception = failure), consumed in order."""
        clock = FakeClock()

        def probe(node):
            outcome = results[node.name].pop(0)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        membership = Membership(parse_cluster(list(results)),
                                probe=probe, clock=clock,
                                probe_interval_s=5.0,
                                backoff_base_s=0.5, backoff_max_s=4.0)
        return membership, clock

    def test_probe_marks_up_and_down(self):
        membership, clock = self._membership({
            "a:1": [{"status": "ok"}],
            "b:2": [ConnectionError("nope")],
        })
        membership.tick()
        assert [n.name for n in membership.live()] == ["a:1"]
        states = {r["node"]: r["state"] for r in membership.status()}
        assert states == {"a:1": "up", "b:2": "down"}

    def test_backoff_doubles_and_caps(self):
        membership, clock = self._membership({
            "a:1": [OSError(), OSError(), OSError(), OSError(),
                    OSError()],
        })
        node = membership.nodes[0]
        delays = []
        for _ in range(5):
            node.next_probe = clock()  # force an immediate probe
            membership.tick()
            delays.append(node.next_probe - clock())
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0]

    def test_success_resets_backoff(self):
        membership, clock = self._membership({
            "a:1": [OSError(), OSError(), {"status": "ok"}, OSError()],
        })
        node = membership.nodes[0]
        for _ in range(2):
            node.next_probe = clock()
            membership.tick()
        assert node.failures == 2
        node.next_probe = clock()
        membership.tick()
        assert node.failures == 0 and node.up
        node.next_probe = clock()
        membership.tick()
        assert node.next_probe - clock() == 0.5, \
            "post-recovery failure restarts the schedule"

    def test_draining_node_is_not_live(self):
        membership, clock = self._membership({
            "a:1": [{"status": "draining"}],
        })
        membership.tick()
        assert membership.nodes[0].up
        assert membership.live() == []
        assert membership.status()[0]["state"] == "draining"

    def test_probe_respects_interval(self):
        calls = []

        def probe(node):
            calls.append(clock())
            return {"status": "ok"}

        clock = FakeClock()
        membership = Membership([("a", 1)], probe=probe, clock=clock,
                                probe_interval_s=5.0)
        membership.tick()
        clock.advance(1.0)
        membership.tick()  # within the interval: no probe
        clock.advance(4.5)
        membership.tick()
        assert calls == [0.0, 5.5]

    def test_empty_node_list_rejected(self):
        with pytest.raises(ConfigError):
            Membership([])
