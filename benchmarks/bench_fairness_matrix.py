"""Benchmark E6: the pairwise CCA contention matrix.

Asserts the shapes the paper's introduction cites: BBR takes more than
its fair share against NewReno/Cubic in deep buffers (Ware et al.),
delay-based CCAs lose to loss-based ones, and same-vs-same pairings
split roughly evenly.
"""

from repro.experiments import fairness_matrix

from conftest import once


def test_fairness_matrix(benchmark, bench_scale):
    duration = 30.0 if bench_scale == "full" else 12.0
    result = once(benchmark, fairness_matrix.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    # Ware et al.: BBR beats loss-based CCAs in deep buffers.
    assert m["bbr_share_vs_loss_min"] > 0.5
    # Delay-based yields to loss-based.
    assert m["vegas_share_vs_loss_max"] < 0.5
    # Same-vs-same lands near a 50/50 split.
    for cca in ("reno", "cubic"):
        assert abs(m[f"share_{cca}_vs_{cca}"] - 0.5) < 0.2
