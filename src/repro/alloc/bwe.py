"""BwE-style hierarchical bandwidth allocation (Kumar et al., SIGCOMM '15).

§2.1: "Google uses BwE to allocate bandwidth in its private WAN.  BwE
integrates with applications that report their bandwidth demand to
centrally determine bandwidth allocations across the entire network.
This isolates applications from each other and eliminates inter-flow
contention across applications."

We model the essential mechanism: applications report demands into a
hierarchy (org -> job -> flow) with weights; a central allocator runs
weighted max-min fairness (water-filling) at every level; hosts enforce
the resulting rates by pacing (here: a CBR-style rate applied to each
flow's sender).  No flow ever experiences another flow's CCA dynamics
-- the allocation is decided entirely off-path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigError


@dataclass
class DemandNode:
    """One node of the demand hierarchy.

    Leaves carry demands (bytes/second); interior nodes aggregate
    children.  ``weight`` scales the node's share relative to its
    siblings.
    """

    name: str
    weight: float = 1.0
    demand: float | None = None          # leaves only
    children: list["DemandNode"] = field(default_factory=list)

    def __post_init__(self):
        if self.weight <= 0:
            raise ConfigError(f"weight must be positive: {self.name}")
        if self.demand is not None and self.demand < 0:
            raise ConfigError(f"demand must be non-negative: {self.name}")

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def total_demand(self) -> float:
        if self.is_leaf:
            return self.demand if self.demand is not None else 0.0
        return sum(child.total_demand() for child in self.children)


def weighted_water_fill(demands: list[float], weights: list[float],
                        capacity: float) -> list[float]:
    """Weighted max-min fair allocation of ``capacity``.

    Flows demanding less than their weighted share keep their demand;
    the residue is re-split among the rest by weight.
    """
    if len(demands) != len(weights):
        raise ConfigError("demands and weights must align")
    if capacity < 0:
        raise ConfigError("capacity must be non-negative")
    alloc = [0.0] * len(demands)
    active = [i for i in range(len(demands)) if demands[i] > 0]
    remaining = capacity
    while active and remaining > 1e-9:
        total_weight = sum(weights[i] for i in active)
        satisfied = [i for i in active
                     if demands[i] <= remaining * weights[i] / total_weight
                     + 1e-12]
        if not satisfied:
            for i in active:
                alloc[i] = remaining * weights[i] / total_weight
            remaining = 0.0
            break
        for i in satisfied:
            alloc[i] = demands[i]
            remaining -= demands[i]
            active.remove(i)
    return alloc


def allocate(root: DemandNode, capacity: float) -> dict[str, float]:
    """Run hierarchical weighted max-min allocation.

    Returns:
        allocation (bytes/second) per node name, leaves and interior.
    """
    out: dict[str, float] = {}

    def recurse(node: DemandNode, share: float) -> None:
        granted = min(share, node.total_demand())
        out[node.name] = granted
        if node.is_leaf:
            return
        demands = [child.total_demand() for child in node.children]
        weights = [child.weight for child in node.children]
        child_alloc = weighted_water_fill(demands, weights, granted)
        for child, amount in zip(node.children, child_alloc):
            recurse(child, amount)

    recurse(root, capacity)
    return out


class BweController:
    """A periodic central allocator driving host pacers.

    Hosts register flows with a demand callback and an enforcement
    callback; every ``period`` the controller collects demands, runs
    the hierarchy, and pushes rates.  The controller is deliberately
    out-of-band: it never touches packets.

    Args:
        sim: the simulator.
        capacity: the managed link/WAN capacity (bytes/second).
        period: reallocation interval (BwE operates on seconds).
    """

    def __init__(self, sim, capacity: float, period: float = 1.0):
        if capacity <= 0 or period <= 0:
            raise ConfigError("capacity and period must be positive")
        self.sim = sim
        self.capacity = capacity
        self.period = period
        self._flows: dict[str, dict] = {}
        self._group_weights: dict[str, float] = {}
        self.allocations: dict[str, float] = {}
        self._running = False

    def register(self, name: str, demand_fn, enforce_fn,
                 group: str = "default", weight: float = 1.0,
                 group_weight: float | None = None) -> None:
        """Register a flow: ``demand_fn() -> bytes/s``,
        ``enforce_fn(rate_bytes_per_s)``.

        ``weight`` scales the flow within its group; ``group_weight``
        (if given) sets the group's weight among groups.
        """
        self._flows[name] = {"demand": demand_fn, "enforce": enforce_fn,
                             "group": group, "weight": weight}
        if group_weight is not None:
            self._group_weights[group] = group_weight

    def start(self) -> None:
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        self.reallocate()
        self.sim.schedule(self.period, self._tick)

    def reallocate(self) -> dict[str, float]:
        """Collect demands, run the hierarchy, push rates."""
        groups: dict[str, list[str]] = {}
        for name, flow in self._flows.items():
            groups.setdefault(flow["group"], []).append(name)
        root = DemandNode("root", children=[
            DemandNode(group, weight=self._group_weights.get(group, 1.0),
                       children=[
                DemandNode(name, weight=self._flows[name]["weight"],
                           demand=float(self._flows[name]["demand"]()))
                for name in names
            ])
            for group, names in sorted(groups.items())
        ])
        self.allocations = allocate(root, self.capacity)
        for name, flow in self._flows.items():
            flow["enforce"](self.allocations.get(name, 0.0))
        return self.allocations
