"""Tests for topology builders, units, and RNG registry."""

import pytest

from repro.cca import CubicCca
from repro.errors import ConfigError
from repro.sim import RngRegistry, Simulator, dumbbell, trace_dumbbell, \
    two_hop_chain
from repro.sim.network import default_buffer_packets
from repro.sim.trace import constant_rate_trace
from repro.tcp import Connection
from repro.units import (bdp_bytes, bdp_packets, mbps, ms, to_mbps, to_ms,
                         to_usec, usec, kbps)


class TestUnits:
    def test_mbps_round_trip(self):
        assert to_mbps(mbps(48.0)) == pytest.approx(48.0)

    def test_ms_round_trip(self):
        assert to_ms(ms(100.0)) == pytest.approx(100.0)

    def test_usec_round_trip(self):
        assert to_usec(usec(250.0)) == pytest.approx(250.0)

    def test_kbps(self):
        assert kbps(64.0) == pytest.approx(8_000.0)

    def test_bdp(self):
        # 48 Mbit/s * 100 ms = 600 kB = ~400 x 1500B packets.
        assert bdp_bytes(mbps(48), ms(100)) == pytest.approx(600_000)
        assert bdp_packets(mbps(48), ms(100)) == pytest.approx(400.0)


class TestRng:
    def test_same_name_same_stream(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_independent_of_creation_order(self):
        first = RngRegistry(seed=1)
        a1 = first.stream("a").random()
        second = RngRegistry(seed=1)
        second.stream("zzz").random()  # extra stream created first
        a2 = second.stream("a").random()
        assert a1 == a2

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("a").random() \
            != RngRegistry(2).stream("a").random()

    def test_fork_is_independent(self):
        parent = RngRegistry(seed=1)
        child = parent.fork("child")
        assert parent.stream("a").random() != child.stream("a").random()


class TestDumbbell:
    def test_invalid_rtt_rejected(self):
        with pytest.raises(ConfigError):
            dumbbell(Simulator(), mbps(10), 0.0)

    def test_default_buffer_is_one_bdp(self):
        assert default_buffer_packets(mbps(48), ms(100)) == 400

    def test_buffer_floor_of_ten(self):
        assert default_buffer_packets(kbps(64), ms(10)) == 10

    def test_round_trip_time_observed(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(80))
        conn = Connection(sim, path, "f", CubicCca())
        conn.sender.write(1_000)
        conn.sender.close()
        sim.run(until=2.0)
        # min RTT = propagation + serialization, no queueing.
        assert conn.sender.rtt.min_rtt == pytest.approx(0.080, abs=0.01)

    def test_loss_rate_wiring(self):
        sim = Simulator()
        path = dumbbell(sim, mbps(10), ms(40), loss_rate=0.3, seed=1)
        conn = Connection(sim, path, "f", CubicCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=5.0)
        assert conn.sender.tracker.retransmits > 0


class TestTraceDumbbell:
    def test_capacity_matches_trace(self):
        sim = Simulator()
        trace = constant_rate_trace(12.112, 1000)  # 1 pkt/ms
        path = trace_dumbbell(sim, trace, ms(40))
        conn = Connection(sim, path, "f", CubicCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=20.0)
        goodput = to_mbps(conn.receiver.received_bytes / 20.0)
        assert goodput > 8.0
        assert goodput <= 12.2


class TestTwoHopChain:
    def test_smaller_hop_is_bottleneck(self):
        sim = Simulator()
        path = two_hop_chain(sim, (mbps(50), mbps(10)), ms(40))
        conn = Connection(sim, path, "f", CubicCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=10.0)
        goodput = to_mbps(conn.receiver.received_bytes / 10.0)
        assert 7.0 < goodput <= 10.1

    def test_first_hop_can_be_bottleneck_too(self):
        # The Wi-Fi-slower-than-access case from §2.2 (Yang et al.).
        sim = Simulator()
        path = two_hop_chain(sim, (mbps(8), mbps(100)), ms(40))
        conn = Connection(sim, path, "f", CubicCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=10.0)
        goodput = to_mbps(conn.receiver.received_bytes / 10.0)
        assert 5.5 < goodput <= 8.1
