"""Oracle suite: gating, findings, and the metamorphic properties.

Fast checks run in tier-1; the probe-envelope verification re-runs
20-second probe simulations and lives behind ``-m slow``.
"""

import pytest

from repro.qa.oracles import (FAULT_ENV, ORACLES, DeliveryBoundOracle,
                              ElasticCrossOracle, ElasticityRescalingOracle,
                              InelasticCrossOracle, InjectedFaultOracle,
                              InvariantOracle, OracleFinding,
                              RateMonotonicityOracle, SeedDeterminismOracle,
                              oracles_for_index, run_oracles)
from repro.qa.scenario import FlowSpec, Scenario, ScenarioOutcome, run_scenario


def _flows_scenario(**overrides) -> Scenario:
    base = dict(family="flows", rate_mbps=8.0, rtt_ms=20.0,
                qdisc="droptail", duration=2.0, seed=42,
                flows=(FlowSpec(cca="reno"),))
    base.update(overrides)
    return Scenario(**base)


def _probe_scenario(**overrides) -> Scenario:
    base = dict(family="probe", rate_mbps=20.0, rtt_ms=50.0,
                qdisc="droptail", duration=20.0, seed=7,
                cross_traffic="reno")
    base.update(overrides)
    return Scenario(**base)


def _outcome(scenario, **overrides) -> ScenarioOutcome:
    base = dict(scenario=scenario, delivered={"flow-0": 1_000_000},
                qdisc_stats={}, events_processed=100, clock=2.0,
                violations=[], probe=None)
    base.update(overrides)
    return ScenarioOutcome(**base)


# -- suite shape ----------------------------------------------------------

def test_oracle_names_unique():
    names = [o.name for o in ORACLES]
    assert len(names) == len(set(names))


def test_period_gating_by_index():
    scenario = _flows_scenario()
    at_0 = {o.name for o in oracles_for_index(scenario, 0)}
    at_1 = {o.name for o in oracles_for_index(scenario, 1)}
    assert "seed-determinism" in at_0
    assert "seed-determinism" not in at_1
    assert "invariants" in at_0 and "invariants" in at_1


def test_corpus_replay_skips_metamorphic():
    names = {o.name for o in oracles_for_index(_flows_scenario(), None)}
    assert "invariants" in names
    assert "seed-determinism" not in names
    assert "rate-monotonicity" not in names


# -- individual oracles ---------------------------------------------------

def test_invariant_oracle_relays_violations():
    scenario = _flows_scenario()
    bad = _outcome(scenario, violations=["[byte_conservation] boom"])
    assert InvariantOracle().check(scenario, bad, run_scenario)
    assert not InvariantOracle().check(scenario, _outcome(scenario),
                                       run_scenario)


def test_delivery_bound_oracle():
    scenario = _flows_scenario()  # 8 Mbps * 2 s = 2 MB capacity
    ok = _outcome(scenario, delivered={"flow-0": 1_500_000})
    over = _outcome(scenario, delivered={"flow-0": 50_000_000})
    oracle = DeliveryBoundOracle()
    assert not oracle.check(scenario, ok, run_scenario)
    assert oracle.check(scenario, over, run_scenario)


def test_rate_monotonicity_applies_only_to_elastic_flows():
    oracle = RateMonotonicityOracle()
    assert oracle.applies(_flows_scenario())
    assert not oracle.applies(
        _flows_scenario(flows=(FlowSpec(cca="cbr"),)))
    assert not oracle.applies(_probe_scenario())


def test_elasticity_rescaling_holds():
    oracle = ElasticityRescalingOracle()
    assert oracle.check(_flows_scenario(), None, None) == []
    assert oracle.check(_flows_scenario(seed=999), None, None) == []


def test_probe_oracles_respect_envelope():
    elastic = ElasticCrossOracle()
    inelastic = InelasticCrossOracle()
    assert elastic.applies(_probe_scenario(cross_traffic="reno"))
    # bbr at long RTT is a documented detector gray zone: not judged.
    assert not elastic.applies(_probe_scenario(cross_traffic="bbr"))
    assert elastic.applies(
        _probe_scenario(cross_traffic="bbr", rtt_ms=20.0))
    assert not elastic.applies(
        _probe_scenario(cross_traffic="reno", qdisc="fq"))
    assert inelastic.applies(_probe_scenario(cross_traffic="none"))
    assert inelastic.applies(_probe_scenario(cross_traffic="cbr"))
    # cbr behind a shallow short-RTT queue aliases into the pulse
    # band: not judged.
    assert not inelastic.applies(
        _probe_scenario(cross_traffic="cbr", rtt_ms=20.0))
    assert not inelastic.applies(
        _probe_scenario(cross_traffic="poisson"))


def test_probe_oracles_flag_wrong_verdicts():
    scenario = _probe_scenario()
    read_clean = _outcome(scenario, probe={"contending": False,
                                           "mean_elasticity": 1.0})
    read_busy = _outcome(scenario, probe={"contending": True,
                                          "mean_elasticity": 3.0})
    assert ElasticCrossOracle().check(scenario, read_clean, run_scenario)
    assert not ElasticCrossOracle().check(scenario, read_busy,
                                          run_scenario)
    quiet = _probe_scenario(cross_traffic="none")
    assert InelasticCrossOracle().check(quiet, read_busy, run_scenario)
    assert not InelasticCrossOracle().check(quiet, read_clean,
                                            run_scenario)


def test_injected_fault_matching(monkeypatch):
    oracle = InjectedFaultOracle()
    assert not oracle.applies(_flows_scenario())
    monkeypatch.setenv(FAULT_ENV, "cca:cbr")
    assert oracle.applies(_flows_scenario())
    assert not oracle.matches(_flows_scenario())
    assert oracle.matches(
        _flows_scenario(flows=(FlowSpec(cca="cbr"),)))
    monkeypatch.setenv(FAULT_ENV, "qdisc:red")
    assert oracle.matches(_flows_scenario(qdisc="red"))
    monkeypatch.setenv(FAULT_ENV, "any")
    assert oracle.matches(_probe_scenario())


def test_run_oracles_collects_findings(monkeypatch):
    monkeypatch.setenv(FAULT_ENV, "any")
    scenario = _flows_scenario()
    findings = run_oracles(scenario, _outcome(scenario), run_scenario,
                           index=1)
    assert any(f.oracle == "injected-fault" for f in findings)
    assert all(isinstance(f, OracleFinding) for f in findings)


# -- metamorphic oracles against the real runner --------------------------

def test_seed_determinism_oracle_on_real_run():
    scenario = _flows_scenario()
    outcome = run_scenario(scenario)
    assert SeedDeterminismOracle().check(scenario, outcome,
                                         run_scenario) == []


def test_rate_monotonicity_oracle_on_real_run():
    scenario = _flows_scenario(qdisc="tbf")
    outcome = run_scenario(scenario)
    assert RateMonotonicityOracle().check(scenario, outcome,
                                          run_scenario) == []


# -- the calibrated envelope itself (slow: 20 s probe sims) ---------------

@pytest.mark.slow
@pytest.mark.parametrize("cross,rate,rtt", [
    ("reno", 20.0, 50.0), ("bbr", 20.0, 20.0)])
def test_envelope_elastic_cells_detected(cross, rate, rtt):
    scenario = _probe_scenario(cross_traffic=cross, rate_mbps=rate,
                               rtt_ms=rtt)
    outcome = run_scenario(scenario, check_invariants=False)
    assert ElasticCrossOracle().check(scenario, outcome,
                                      run_scenario) == []


@pytest.mark.slow
@pytest.mark.parametrize("cross,rate,rtt", [
    ("cbr", 20.0, 50.0), ("none", 20.0, 50.0)])
def test_envelope_inelastic_cells_clean(cross, rate, rtt):
    scenario = _probe_scenario(cross_traffic=cross, rate_mbps=rate,
                               rtt_ms=rtt)
    outcome = run_scenario(scenario, check_invariants=False)
    assert InelasticCrossOracle().check(scenario, outcome,
                                        run_scenario) == []
