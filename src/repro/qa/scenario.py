"""Scenario model and runner for the QA fuzzer.

A :class:`Scenario` is a fully serializable description of one
simulation: link parameters, one of the eight qdiscs, a set of flows
drawn from all nine CCAs, and a cross-traffic mix from the traffic
registry.  Scenarios round-trip through plain dicts (JSON), which is
what makes the regression corpus under ``tests/corpus/`` possible.

:func:`run_scenario` executes a scenario under full trace capture,
runs the four :mod:`repro.obs.invariants` checkers over the trace
(including the final-occupancy cross-check against the live qdisc),
and returns a :class:`ScenarioOutcome` whose :meth:`fingerprint` is a
deterministic digest of everything observable -- the unit of
comparison for the metamorphic oracles.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from ..cca import make_cca
from ..cca.cbr import CbrCca
from ..core.detector import ContentionDetector
from ..core.probe import ElasticityProbe
from ..errors import ConfigError
from ..medium.config import MEDIUM_DEFAULT, parse_medium
from ..obs.bus import capture
from ..obs.invariants import check_trace
from ..qdisc import (CoDelQueue, DropTailQueue, DrrFairQueue, HtbClass,
                     HtbQueue, Policer, RedQueue, StochasticFairQueue,
                     TokenBucketFilter)
from ..sim.engine import Simulator
from ..sim.jitter import MAX_AMPLITUDE as JITTER_MAX, TimingJitter
from ..sim.network import default_buffer_packets, dumbbell, medium_dumbbell
from ..store.fingerprint import fingerprint
from ..traffic.backlogged import BackloggedFlow
from ..traffic.mix import CROSS_TRAFFIC_REGISTRY, make_cross_traffic
from ..units import mbps, ms

#: Every qdisc in :mod:`repro.qdisc`, by scenario name.
QDISC_NAMES = ("droptail", "red", "codel", "fq", "sfq", "tbf",
               "policer", "htb")

#: Every CCA in :mod:`repro.cca` a fuzzed flow can run (Nimbus is the
#: probe's CCA and is exercised by the probe scenario family).
FLOW_CCAS = ("reno", "newreno", "cubic", "vegas", "copa", "bbr",
             "dctcp", "ledbat", "cbr")

#: Scenario families: "flows" pits CCA mixes against each other behind
#: one qdisc; "probe" attaches the paper's elasticity probe to a path
#: with one cross-traffic type (the §3.2 measurement setup).
FAMILIES = ("flows", "probe")

#: Simulation backends a scenario can run on.
BACKENDS = ("packet", "fluid")


@dataclass(frozen=True)
class FlowSpec:
    """One fuzzed flow.

    Attributes:
        cca: a name from :data:`FLOW_CCAS`.
        rate_frac: for ``cbr``, the constant rate as a fraction of the
            link rate (ignored for window-based CCAs).
        user_id: subscriber identifier (HTB classes key on this).
        start: seconds after t=0 when the flow begins sending.
        ecn: negotiate ECN (DCTCP wants this; harmless elsewhere).
    """

    cca: str
    rate_frac: float = 0.3
    user_id: str = ""
    start: float = 0.0
    ecn: bool = False

    def __post_init__(self):
        if self.cca not in FLOW_CCAS:
            raise ConfigError(f"unknown flow CCA {self.cca!r}; "
                              f"known: {', '.join(FLOW_CCAS)}")
        if not 0.0 < self.rate_frac <= 1.0:
            raise ConfigError(f"rate_frac must be in (0, 1]: {self.rate_frac}")
        if self.start < 0:
            raise ConfigError(f"start must be >= 0: {self.start}")


@dataclass(frozen=True)
class Scenario:
    """One random-but-valid simulation, fully serializable.

    Attributes:
        family: "flows" or "probe" (see :data:`FAMILIES`).
        rate_mbps / rtt_ms / buffer_multiplier: link parameters.
        qdisc: bottleneck discipline, one of :data:`QDISC_NAMES`.
        flows: the fuzzed flows ("flows" family; empty for "probe").
        cross_traffic: a name from the cross-traffic registry; the
            probe's competitor in the "probe" family, extra background
            load in the "flows" family.
        duration: simulated seconds.
        seed: the scenario's own seed (qdisc salts, traffic RNG).
        backend: "packet" (the discrete-event engine) or "fluid" (the
            rate-based fast path, :mod:`repro.fluid`).
        timing_jitter: endpoint-timing-jitter amplitude in
            ``[0, 0.5]`` (0 = perfect clocks).  Models endpoint CPU
            contention perturbing pacing/ACK clocking (2BRobust, see
            :mod:`repro.sim.jitter`); applies to measured flows and
            the probe, not to cross traffic.
        medium: the bottleneck regime: "queue" (default -- the qdisc
            fronts a serializing link) or "csma-<n>[-prio]" (a
            CSMA/CA shared medium with n stations; flows map to
            stations, each fronted by its own qdisc instance; see
            :mod:`repro.medium`).
    """

    family: str
    rate_mbps: float
    rtt_ms: float
    qdisc: str
    duration: float
    seed: int
    buffer_multiplier: float = 1.0
    flows: tuple[FlowSpec, ...] = ()
    cross_traffic: str = "none"
    backend: str = "packet"
    timing_jitter: float = 0.0
    medium: str = MEDIUM_DEFAULT

    def __post_init__(self):
        if self.family not in FAMILIES:
            raise ConfigError(f"unknown family {self.family!r}")
        if self.rate_mbps <= 0 or self.rtt_ms <= 0 or self.duration <= 0:
            raise ConfigError(f"invalid link/duration in {self}")
        if self.buffer_multiplier <= 0:
            raise ConfigError(
                f"buffer_multiplier must be positive: {self.buffer_multiplier}")
        if self.qdisc not in QDISC_NAMES:
            raise ConfigError(f"unknown qdisc {self.qdisc!r}; "
                              f"known: {', '.join(QDISC_NAMES)}")
        if self.cross_traffic not in CROSS_TRAFFIC_REGISTRY:
            raise ConfigError(
                f"unknown cross traffic {self.cross_traffic!r}")
        if self.family == "flows" and not self.flows:
            raise ConfigError("'flows' scenarios need at least one flow")
        if self.family == "probe" and self.flows:
            raise ConfigError("'probe' scenarios take cross_traffic, "
                              "not explicit flows")
        if self.backend not in BACKENDS:
            raise ConfigError(f"unknown backend {self.backend!r}; "
                              f"known: {', '.join(BACKENDS)}")
        if not 0.0 <= self.timing_jitter <= JITTER_MAX:
            raise ConfigError(
                f"timing_jitter must be in [0, {JITTER_MAX}]: "
                f"{self.timing_jitter}")
        parse_medium(self.medium)  # raises ConfigError on bad values

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-dict form (JSON-ready; round-trips via from_dict).

        Default-valued late additions (backend, timing_jitter, medium)
        are omitted so every pre-existing scenario fingerprint -- and
        the whole regression corpus -- is unchanged by their existence.
        """
        d = dataclasses.asdict(self)
        d["flows"] = [dataclasses.asdict(f) for f in self.flows]
        if d["backend"] == "packet":
            del d["backend"]
        if d["timing_jitter"] == 0.0:
            del d["timing_jitter"]
        if d["medium"] == MEDIUM_DEFAULT:
            del d["medium"]
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "Scenario":
        """Rebuild a scenario from :meth:`to_dict` output."""
        payload = dict(data)
        payload["flows"] = tuple(FlowSpec(**f)
                                 for f in payload.get("flows", ()))
        return cls(**payload)

    def label(self) -> str:
        """Compact human-readable description (stable; used in logs)."""
        if self.family == "flows":
            what = ",".join(f.cca for f in self.flows)
        else:
            what = f"probe-vs-{self.cross_traffic}"
        extra = (f" cross={self.cross_traffic}"
                 if self.family == "flows" and self.cross_traffic != "none"
                 else "")
        tail = "" if self.backend == "packet" else f" backend={self.backend}"
        if self.timing_jitter:
            tail += f" jitter={self.timing_jitter:g}"
        if self.medium != MEDIUM_DEFAULT:
            tail += f" medium={self.medium}"
        return (f"{self.family}[{what}] qdisc={self.qdisc}{extra} "
                f"{self.rate_mbps:g}mbps/{self.rtt_ms:g}ms "
                f"buf={self.buffer_multiplier:g} dur={self.duration:g}s "
                f"seed={self.seed}{tail}")


def scenario_fingerprint(scenario: Scenario) -> str:
    """Content fingerprint of a scenario (names corpus files)."""
    return fingerprint(scenario.to_dict(), kind="qa-scenario")


# -- qdisc construction ---------------------------------------------------

def build_qdisc(scenario: Scenario):
    """Build the scenario's bottleneck qdisc (all eight supported).

    Shaper/policer rates are derived from the link rate (90% for
    tbf/policer, a 45%/45% class split for htb) so rescaling the link
    rescales the whole bottleneck -- the property the rate-monotonicity
    oracle relies on.
    """
    rate = mbps(scenario.rate_mbps)
    rtt = ms(scenario.rtt_ms)
    buf = default_buffer_packets(rate, rtt, scenario.buffer_multiplier)
    name = scenario.qdisc
    if name == "droptail":
        return DropTailQueue(limit_packets=buf)
    if name == "red":
        limit = max(buf, 8)
        min_thresh = max(1, limit // 4)
        max_thresh = max(min_thresh + 1, (3 * limit) // 4)
        return RedQueue(min_thresh=min_thresh, max_thresh=max_thresh,
                        limit_packets=limit, seed=scenario.seed)
    if name == "codel":
        return CoDelQueue(limit_packets=buf)
    if name == "fq":
        return DrrFairQueue(limit_packets=buf)
    if name == "sfq":
        return StochasticFairQueue(limit_packets=buf, buckets=32,
                                   salt=scenario.seed & 0xFFFF)
    if name == "tbf":
        return TokenBucketFilter(rate=0.9 * rate, burst=30_000,
                                 child=DropTailQueue(limit_packets=buf))
    if name == "policer":
        return Policer(rate=0.9 * rate, burst=30_000,
                       child=DropTailQueue(limit_packets=buf))
    if name == "htb":
        classes = [HtbClass("a", rate=0.45 * rate, ceil=rate),
                   HtbClass("b", rate=0.45 * rate, ceil=rate)]
        return HtbQueue(classes, default_class="a", limit_packets=buf)
    raise ConfigError(f"unknown qdisc {name!r}")  # pragma: no cover


def _jitter_for(scenario: Scenario, stream: str) -> TimingJitter | None:
    """The scenario's jitter stream for one flow (None when disabled)."""
    if scenario.timing_jitter <= 0.0:
        return None
    return TimingJitter(scenario.timing_jitter, scenario.seed, stream)


def _make_flow(sim: Simulator, path, index: int, spec: FlowSpec,
               rate_bps: float,
               jitter: TimingJitter | None = None) -> BackloggedFlow:
    if spec.cca == "cbr":
        cca = CbrCca(rate=max(10_000.0, spec.rate_frac * rate_bps))
    else:
        cca = make_cca(spec.cca)
    flow = BackloggedFlow(sim, path, f"flow-{index}", cca,
                          user_id=spec.user_id, ecn=spec.ecn,
                          jitter=jitter)
    if spec.start > 0:
        sim.schedule(spec.start, flow.start)
    else:
        flow.start()
    return flow


# -- outcome --------------------------------------------------------------

@dataclass
class ScenarioOutcome:
    """Everything observable from one scenario run.

    Attributes:
        scenario: the executed scenario.
        delivered: goodput bytes per flow id (includes "cross"/"probe").
        qdisc_stats: the bottleneck qdisc's counters and residuals.
        events_processed: callbacks the engine executed.
        clock: final simulation time.
        violations: invariant violations found in the trace (strings;
            empty on a healthy run).
        probe: probe-family summary (mean elasticity, verdict fields),
            None for "flows" scenarios.
    """

    scenario: Scenario
    delivered: dict[str, int]
    qdisc_stats: dict[str, float]
    events_processed: int
    clock: float
    violations: list[str] = field(default_factory=list)
    probe: dict | None = None

    @property
    def total_delivered(self) -> int:
        """Total goodput bytes across all flows."""
        return sum(self.delivered.values())

    def summary(self) -> dict:
        """Canonical, fingerprintable digest of the outcome."""
        return {
            "scenario": self.scenario.to_dict(),
            "delivered": dict(sorted(self.delivered.items())),
            "qdisc": dict(sorted(self.qdisc_stats.items())),
            "events": self.events_processed,
            "clock": self.clock,
            "violations": list(self.violations),
            "probe": self.probe,
        }

    def fingerprint(self) -> str:
        """Deterministic digest of :meth:`summary` (the metamorphic
        comparison unit: equal fingerprints == identical results)."""
        return fingerprint(self.summary(), kind="qa-outcome")


def run_scenario(scenario: Scenario,
                 check_invariants: bool = True) -> ScenarioOutcome:
    """Execute one scenario and audit its trace.

    The full event trace is captured and fed through
    :func:`repro.obs.invariants.check_trace`, including the final
    occupancy cross-check against the live qdisc, so every fuzzed run
    doubles as an invariant audit.  ``check_invariants=False`` skips
    capture for metamorphic re-runs where only the outcome fingerprint
    matters (the fingerprint does not cover the raw trace).

    Scenarios with ``backend="fluid"`` dispatch to the rate-based
    backend (:mod:`repro.fluid`), which produces the same outcome
    shape without a packet trace.
    """
    if scenario.backend == "fluid":
        from ..fluid import run_scenario_fluid
        return run_scenario_fluid(scenario,
                                  check_invariants=check_invariants)
    sim = Simulator()
    rate = mbps(scenario.rate_mbps)
    rtt = ms(scenario.rtt_ms)
    medium_spec = parse_medium(scenario.medium)
    qdisc = build_qdisc(scenario) if medium_spec is None else None
    medium_link = None

    def build_and_run():
        # Starting a backlogged flow pumps its initial window into the
        # qdisc synchronously, so trace capture must already be active
        # here -- not just around sim.run() -- or the invariant checker
        # sees dequeues without their enqueues.
        nonlocal medium_link
        if medium_spec is None:
            path = dumbbell(sim, rate, rtt, qdisc=qdisc)
        else:
            path = medium_dumbbell(sim, rate, rtt, medium_spec,
                                   qdisc_factory=lambda:
                                   build_qdisc(scenario),
                                   seed=scenario.seed)
            medium_link = path.bottleneck
        sources: dict[str, object] = {}
        probe = None
        if scenario.family == "probe":
            probe = ElasticityProbe(sim, path, capacity_hint=rate,
                                    jitter=_jitter_for(scenario, "probe"))
            probe.start()
        else:
            for i, spec in enumerate(scenario.flows):
                sources[f"flow-{i}"] = _make_flow(
                    sim, path, i, spec, rate,
                    jitter=_jitter_for(scenario, f"flow-{i}"))
        if scenario.family == "probe" or scenario.cross_traffic != "none":
            cross = make_cross_traffic(scenario.cross_traffic, sim, path,
                                       "cross", seed=scenario.seed)
            cross.start()
            sources["cross"] = cross
        sim.run(until=scenario.duration)
        return sources, probe

    def live_qdiscs():
        roots = ([qdisc] if medium_spec is None
                 else list(medium_link.station_qdiscs))
        out = []
        for q in roots:
            out.append(q)
            child = getattr(q, "child", None)
            if child is not None:
                out.append(child)
        return out

    violations: list[str] = []
    if check_invariants:
        with capture() as trace:
            sources, probe = build_and_run()
        violations = [str(v) for v in check_trace(trace.events,
                                                  qdiscs=live_qdiscs())]
    else:
        sources, probe = build_and_run()

    delivered = {fid: int(src.delivered_bytes)
                 for fid, src in sources.items()}
    probe_summary = None
    if probe is not None:
        delivered["probe"] = int(
            probe.connection.receiver.received_bytes)
        report = probe.report()
        verdict = ContentionDetector().verdict(list(report.readings))
        probe_summary = {
            "mean_elasticity": verdict.mean_elasticity,
            "contending": verdict.contending,
            "category": verdict.category,
            "n_readings": verdict.n_readings,
        }
    # In the contention regime the stats aggregate over the per-station
    # qdiscs (the medium has no single shared queue).
    roots = [qdisc] if medium_spec is None else medium_link.station_qdiscs
    qdisc_stats = {
        "enqueued": float(sum(q.enqueued for q in roots)),
        "dequeued": float(sum(q.dequeued for q in roots)),
        "dequeued_bytes": float(sum(q.dequeued_bytes for q in roots)),
        "drops": float(sum(q.drops for q in roots)),
        "dropped_bytes": float(sum(q.dropped_bytes for q in roots)),
        "marks": float(sum(q.marks for q in roots)),
        "residual_packets": float(sum(len(q) for q in roots)),
        "residual_bytes": float(sum(q.byte_length for q in roots)),
    }
    return ScenarioOutcome(scenario=scenario, delivered=delivered,
                           qdisc_stats=qdisc_stats,
                           events_processed=sim.events_processed,
                           clock=sim.now, violations=violations,
                           probe=probe_summary)
