"""Unit tests for links, delay boxes, loss boxes, and trace links."""

import pytest

from repro.errors import ConfigError
from repro.qdisc import DropTailQueue, TokenBucketFilter
from repro.sim import (CountingSink, DelayBox, Link, LossBox, Simulator,
                       TraceLink)
from repro.sim.packet import make_data
from repro.units import mbps


def pkt(flow="f", size=1500):
    return make_data(flow, seq=0, payload=size - 52, size=size)


class TestLink:
    def test_serialization_delay(self):
        sim = Simulator()
        sink = CountingSink()
        arrivals = []
        link = Link(sim, rate=1500.0, sink=sink)  # 1 packet per second
        link.add_tap(lambda p, now: arrivals.append(now))
        link.send(pkt(size=1500))
        sim.run()
        assert arrivals == [1.0]

    def test_back_to_back_packets_queue(self):
        sim = Simulator()
        sink = CountingSink()
        arrivals = []
        link = Link(sim, rate=1500.0, sink=sink)
        link.add_tap(lambda p, now: arrivals.append(now))
        link.send(pkt())
        link.send(pkt())
        link.send(pkt())
        sim.run()
        assert arrivals == [1.0, 2.0, 3.0]

    def test_queue_overflow_drops(self):
        sim = Simulator()
        link = Link(sim, rate=1500.0, sink=CountingSink(),
                    qdisc=DropTailQueue(limit_packets=2))
        for _ in range(5):
            link.send(pkt())
        sim.run()
        # 1 in flight + 2 queued accepted; rest dropped.
        assert link.qdisc.drops == 2
        assert link.delivered_packets == 3

    def test_per_flow_accounting(self):
        sim = Simulator()
        link = Link(sim, rate=mbps(10), sink=CountingSink(),
                    qdisc=DropTailQueue(limit_packets=100))
        link.send(pkt("a", size=1000))
        link.send(pkt("b", size=500))
        link.send(pkt("a", size=200))
        sim.run()
        assert link.flow_bytes("a") == 1200
        assert link.flow_bytes("b") == 500
        assert link.flow_bytes("nobody") == 0

    def test_rate_change_applies_to_next_packet(self):
        sim = Simulator()
        arrivals = []
        link = Link(sim, rate=1500.0, sink=CountingSink())
        link.add_tap(lambda p, now: arrivals.append(now))
        link.send(pkt())
        sim.run()
        link.set_rate(3000.0)
        link.send(pkt())
        sim.run()
        assert arrivals == pytest.approx([1.0, 1.5])

    def test_invalid_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            Link(sim, rate=0.0)
        link = Link(sim, rate=100.0)
        with pytest.raises(ConfigError):
            link.set_rate(-1.0)

    def test_token_gated_qdisc_wakes_link(self):
        # A TBF inside a fast link: the link must poll again when
        # tokens refill, not stall forever.
        sim = Simulator()
        arrivals = []
        tbf = TokenBucketFilter(rate=1514.0, burst=1514)  # 1 pkt/s
        link = Link(sim, rate=1e9, sink=CountingSink(), qdisc=tbf)
        link.add_tap(lambda p, now: arrivals.append(now))
        link.send(pkt(size=1514))
        link.send(pkt(size=1514))
        sim.run(until=5.0)
        assert len(arrivals) == 2
        assert arrivals[1] >= 1.0

    def test_busy_time_tracks_utilization(self):
        sim = Simulator()
        link = Link(sim, rate=1500.0, sink=CountingSink())
        link.send(pkt(size=750))
        sim.run()
        assert link.busy_time == pytest.approx(0.5)


class TestDelayBox:
    def test_adds_fixed_delay(self):
        sim = Simulator()
        sink = CountingSink()
        arrivals = []
        box = DelayBox(sim, delay=0.05, sink=sink)
        box.send(pkt())
        sim.schedule(0.0, lambda: None)
        sim.run()
        assert sink.packets == 1

    def test_is_infinite_capacity(self):
        sim = Simulator()
        sink = CountingSink()
        box = DelayBox(sim, delay=0.01, sink=sink)
        for _ in range(100):
            box.send(pkt())
        sim.run()
        assert sink.packets == 100

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            DelayBox(Simulator(), delay=-0.1)


class TestLossBox:
    def test_zero_loss_passes_everything(self):
        sim = Simulator()
        sink = CountingSink()
        box = LossBox(sim, loss_rate=0.0, sink=sink)
        for _ in range(50):
            box.send(pkt())
        assert sink.packets == 50

    def test_half_loss_drops_roughly_half(self):
        sim = Simulator()
        sink = CountingSink()
        box = LossBox(sim, loss_rate=0.5, sink=sink, seed=42)
        for _ in range(1000):
            box.send(pkt())
        assert 400 < sink.packets < 600
        assert box.dropped == 1000 - sink.packets

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigError):
            LossBox(Simulator(), loss_rate=1.0)


class TestTraceLink:
    def test_one_packet_per_opportunity(self):
        sim = Simulator()
        sink = CountingSink()
        arrivals = []
        link = TraceLink(sim, [10, 20, 30], sink=sink)
        link.add_tap(lambda p, now: arrivals.append(now))
        for _ in range(3):
            link.send(pkt())
        sim.run(until=0.05)
        assert arrivals == pytest.approx([0.010, 0.020, 0.030])

    def test_trace_repeats_with_period(self):
        sim = Simulator()
        sink = CountingSink()
        arrivals = []
        link = TraceLink(sim, [10, 20], sink=sink)
        link.add_tap(lambda p, now: arrivals.append(now))
        for _ in range(4):
            link.send(pkt())
        sim.run(until=0.06)
        assert arrivals == pytest.approx([0.010, 0.020, 0.030, 0.040])

    def test_idle_opportunities_are_wasted(self):
        sim = Simulator()
        link = TraceLink(sim, [10, 20], sink=CountingSink())
        sim.run(until=0.05)
        assert link.wasted_opportunities >= 4
        assert link.delivered_packets == 0

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceLink(Simulator(), [])

    def test_decreasing_trace_rejected(self):
        with pytest.raises(ConfigError):
            TraceLink(Simulator(), [20, 10])
