"""Linux-``tcp_info``-style instrumentation.

M-Lab NDT archives a ``TCPInfo`` snapshot stream per measurement; the
paper's §3.1 analysis keys on a handful of its fields (``AppLimited``,
``RWndLimited``, ``BusyTime``, throughput, RTT).  This module maintains
the same cumulative counters on our simulated transport so that records
collected from the simulator are drop-in inputs to the NDT pipeline.

All durations are kept in **seconds** internally and exported in
microseconds (as Linux does) by :meth:`TcpInfoTracker.snapshot`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..units import to_usec


class LimitState(enum.Enum):
    """What is limiting the sender right now."""

    IDLE = "idle"
    BUSY = "busy"                  # data outstanding, window open
    CWND_LIMITED = "cwnd_limited"  # congestion window is the binding cap
    RWND_LIMITED = "rwnd_limited"  # receiver window is the binding cap
    APP_LIMITED = "app_limited"    # nothing to send


@dataclass(frozen=True)
class TcpInfoSnapshot:
    """One instant of connection state, M-Lab NDT field conventions.

    Durations are microseconds, rates bytes/second, RTTs seconds.
    """

    elapsed_time_us: float
    bytes_acked: int
    bytes_sent: int
    bytes_retrans: int
    busy_time_us: float
    rwnd_limited_us: float
    app_limited_us: float
    cwnd_limited_us: float
    min_rtt_s: float | None
    smoothed_rtt_s: float | None
    throughput_bps: float
    retransmits: int


class TcpInfoTracker:
    """Accumulates limit-state durations and byte counters for a sender.

    The owning endpoint calls :meth:`set_state` whenever its limiting
    factor changes and :meth:`snapshot` to export NDT-style rows.
    """

    def __init__(self, start_time: float = 0.0):
        self.start_time = start_time
        self.bytes_acked = 0
        self.bytes_sent = 0
        self.bytes_retrans = 0
        self.retransmits = 0
        self._state = LimitState.IDLE
        self._state_since = start_time
        self._durations: dict[LimitState, float] = {
            state: 0.0 for state in LimitState}
        self._last_snapshot_time = start_time
        self._last_snapshot_acked = 0

    @property
    def state(self) -> LimitState:
        return self._state

    def set_state(self, state: LimitState, now: float) -> None:
        """Transition to ``state``, charging elapsed time to the old one."""
        self._durations[self._state] += max(0.0, now - self._state_since)
        self._state = state
        self._state_since = now

    def duration(self, state: LimitState, now: float) -> float:
        """Total seconds spent in ``state`` up to ``now``."""
        extra = max(0.0, now - self._state_since) \
            if state is self._state else 0.0
        return self._durations[state] + extra

    def snapshot(self, now: float, min_rtt_s: float | None = None,
                 smoothed_rtt_s: float | None = None) -> TcpInfoSnapshot:
        """Export the current counters as an NDT-style snapshot row.

        ``throughput_bps`` is the mean rate since the *previous*
        snapshot (NDT computes deltas the same way).
        """
        interval = now - self._last_snapshot_time
        delta = self.bytes_acked - self._last_snapshot_acked
        throughput = delta / interval if interval > 0 else 0.0
        self._last_snapshot_time = now
        self._last_snapshot_acked = self.bytes_acked

        busy = (self.duration(LimitState.BUSY, now)
                + self.duration(LimitState.CWND_LIMITED, now)
                + self.duration(LimitState.RWND_LIMITED, now))
        return TcpInfoSnapshot(
            elapsed_time_us=to_usec(now - self.start_time),
            bytes_acked=self.bytes_acked,
            bytes_sent=self.bytes_sent,
            bytes_retrans=self.bytes_retrans,
            busy_time_us=to_usec(busy),
            rwnd_limited_us=to_usec(
                self.duration(LimitState.RWND_LIMITED, now)),
            app_limited_us=to_usec(
                self.duration(LimitState.APP_LIMITED, now)),
            cwnd_limited_us=to_usec(
                self.duration(LimitState.CWND_LIMITED, now)),
            min_rtt_s=min_rtt_s,
            smoothed_rtt_s=smoothed_rtt_s,
            throughput_bps=throughput,
            retransmits=self.retransmits,
        )
