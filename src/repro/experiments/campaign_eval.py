"""Experiment E7: the measurement study the paper proposes.

A fleet of elasticity probes over a sampled path population with known
ground truth: how accurately does the §3.2 technique classify paths,
and what does the campaign say about the hypothesis?  Includes the
threshold ROC sweep DESIGN.md calls out as a design-choice ablation.
"""

from __future__ import annotations

from .. import viz
from ..core.campaign import Campaign, CampaignResult
from ..core.detector import ContentionDetector, confusion_counts
from ..core.hypothesis import evaluate_hypothesis
from .runner import ExperimentResult, Stopwatch


def _roc_rows(campaign: CampaignResult,
              thresholds: tuple[float, ...]) -> list[dict]:
    rows = []
    for threshold in thresholds:
        detector = ContentionDetector(threshold=threshold)
        verdicts = [detector.verdict(list(r.report.readings)).contending
                    for r in campaign.results]
        truths = [r.spec.truly_contending for r in campaign.results]
        quality = confusion_counts(verdicts, truths)
        rows.append({"threshold": threshold,
                     "precision": round(quality["precision"], 4),
                     "recall": round(quality["recall"], 4),
                     "accuracy": round(quality["accuracy"], 4)})
    return rows


def run(n_paths: int = 48, duration: float = 30.0, seed: int = 1,
        fq_fraction: float = 0.3,
        roc_thresholds: tuple[float, ...] = (1.5, 2.0, 3.0, 4.0, 6.0, 9.0),
        workers: int | None = None,
        resume: bool = False,
        backend: str = "packet",
        medium: str = "queue",
        cluster: str | None = None) -> ExperimentResult:
    """Run the campaign and evaluate the hypothesis.

    ``workers`` fans the per-path probe simulations out over processes
    (default: ``REPRO_WORKERS`` env var, then CPU count); results are
    identical for any value.  When the ambient result store is active
    (``repro run`` without ``--no-cache``, or ``REPRO_CACHE=1``),
    completed paths are cached and checkpointed; ``resume`` addition-
    ally skips paths a prior interrupted run quarantined as failing.
    ``backend`` selects "packet" (the event-driven reference) or
    "fluid" (20-50x faster; see DESIGN.md for the validity envelope).
    ``cluster`` ("host1:8765,host2:...") shards the per-path work
    across ``repro serve`` nodes and merges results back into the
    local store -- byte-identical to a local run (SERVING.md).
    ``medium`` replaces every path's bottleneck queue with a shared
    medium ("csma-<n>", optionally "-prio"); see DESIGN.md and E16
    for how that bends the detector's calibration.
    """
    with Stopwatch() as watch:
        if cluster:
            from ..cluster import run_clustered_campaign
            params = {"n_paths": n_paths, "seed": seed,
                      "duration": duration,
                      "fq_fraction": fq_fraction, "backend": backend}
            if medium != "queue":
                params["medium"] = medium
            campaign = run_clustered_campaign(
                params, cluster, workers=workers, resume=resume)
        else:
            campaign = Campaign(n_paths=n_paths, seed=seed,
                                duration=duration,
                                fq_fraction=fq_fraction,
                                backend=backend,
                                medium=medium).run(workers=workers,
                                                   resume=resume)
        evaluation = evaluate_hypothesis(campaign)
        roc = _roc_rows(campaign, roc_thresholds)
        groups = campaign.by_cross_traffic()

    group_rows = [{
        "cross_traffic": name,
        "paths": len(values),
        "mean_elasticity": round(sum(values) / len(values), 3),
        "max_elasticity": round(max(values), 3),
    } for name, values in sorted(groups.items())]

    path_rows = [{
        "rate_mbps": r.spec.rate_mbps,
        "rtt_ms": r.spec.rtt_ms,
        "qdisc": r.spec.qdisc,
        "cross_traffic": r.spec.cross_traffic,
        "mean_elasticity": round(r.verdict.mean_elasticity, 3),
        "verdict": r.verdict.contending,
        "category": r.verdict.category,
        "truth": r.spec.truly_contending,
    } for r in campaign.results]

    quality = campaign.detector_quality()
    masked = campaign.masked_summary()
    failed_parts = []
    if campaign.failed:
        failed_parts = [
            "",
            f"QUARANTINED: {len(campaign.failed)} path(s) kept failing "
            "and were excluded from the aggregates:",
        ] + [f"  {f.spec.cross_traffic}@{f.spec.qdisc} "
             f"seed={f.spec.seed}: {f.error_type}: {f.error} "
             f"({f.attempts} attempts)" for f in campaign.failed]
    parts = [
        f"E7: elasticity-probe campaign over {n_paths} sampled paths "
        f"({fq_fraction:.0%} with FQ bottlenecks)",
        "",
        viz.table(
            [(g["cross_traffic"], g["paths"], g["mean_elasticity"],
              g["max_elasticity"]) for g in group_rows],
            header=("cross traffic", "paths", "mean elasticity",
                    "max elasticity")),
        "",
        f"detector (visible paths): precision={quality['precision']:.2f} "
        f"recall={quality['recall']:.2f} "
        f"accuracy={quality['accuracy']:.2f}",
        f"isolation-masked paths (elastic cross behind FQ): "
        f"{masked['n_masked']:.0f}, of which "
        f"{masked['fraction_reads_contending']:.0%} read contending "
        f"(the instrument cannot distinguish FQ capping from CCA "
        f"contention; see EXPERIMENTS.md)",
        "",
        "Threshold ROC sweep:",
        viz.table(
            [(r["threshold"], r["precision"], r["recall"], r["accuracy"])
             for r in roc],
            header=("threshold", "precision", "recall", "accuracy")),
        "",
        evaluation.describe(),
    ] + failed_parts
    metrics = {
        "n_failed_paths": float(len(campaign.failed)),
        "fraction_contending": campaign.fraction_contending,
        "true_fraction_contending": campaign.true_fraction_contending,
        "detector_precision": quality["precision"],
        "detector_recall": quality["recall"],
        "detector_accuracy": quality["accuracy"],
        "n_masked": masked["n_masked"],
        "masked_reads_contending":
            masked["fraction_reads_contending"],
        "hypothesis_supported": 1.0 if evaluation.supported else 0.0,
    }
    return ExperimentResult(
        experiment="campaign_eval",
        text="\n".join(parts),
        metrics=metrics,
        tables={"paths": path_rows, "roc": roc,
                "by_cross_traffic": group_rows},
        params={"n_paths": n_paths, "duration": duration, "seed": seed,
                "fq_fraction": fq_fraction, "workers": workers,
                "backend": backend},
        elapsed_s=watch.elapsed,
    )
