"""Pulling results back: store objects and metrics across nodes.

Remote nodes execute shards and checkpoint per-task objects in their
own stores; the coordinator pulls those objects over the serve
``GET /store/<key>`` endpoint and writes them into the local store
**byte-for-byte** (:meth:`ArtifactStore.put_bytes`).  Because every
object is content-addressed by the fingerprint of the config that
produced it, the merge is idempotent: pulling an object twice, from
two nodes, or concurrently with a local computation of the same key
always converges to the same store state.

Metrics use the same trick at a different layer: node registries are
commutative (counters and histogram buckets add, gauges take max --
:meth:`repro.obs.metrics.MetricsRegistry.merge`), so a cluster-wide
snapshot is just every node's ``/metrics`` folded into one fresh
registry.
"""

from __future__ import annotations

import pickle

from ..errors import ClusterError
from ..obs.metrics import REGISTRY as _METRICS
from ..obs.metrics import MetricsRegistry
from ..serve.client import ServeClient, ServeError
from ..store.artifacts import ArtifactStore


def pull_objects(client: ServeClient, store: ArtifactStore,
                 keys, kind: str = "generic", label: str = "") -> int:
    """Pull every missing ``key`` from ``client``'s node into
    ``store``; returns how many objects actually transferred.

    Each transfer is validated by unpickling before it is written, so
    a truncated response can never plant an unreadable object locally.

    Raises:
        ServeError: the node became unreachable, or lacks a key it
            was expected to hold (the caller decides whether to
            re-dispatch or fall back to local execution).
        ClusterError: a transferred object failed to unpickle.
    """
    metrics = _METRICS.scoped("cluster")
    pulled = 0
    for key in keys:
        if key in store:
            metrics.counter("merge_skipped").inc()
            continue
        data = client.fetch_store(key)
        try:
            pickle.loads(data)
        except Exception as exc:
            raise ClusterError(
                f"object {key[:16]}... from {client.host}:{client.port} "
                f"does not unpickle: {exc!r}")
        store.put_bytes(key, data, kind=kind, label=label)
        pulled += 1
        metrics.counter("merge_objects").inc()
        metrics.counter("merge_bytes").inc(len(data))
    return pulled


def collect_metrics(clients) -> dict:
    """One merged metrics snapshot across ``clients``' nodes.

    Unreachable nodes are skipped (their counters are simply absent);
    the result is the same commutative merge worker processes already
    use, so double counting is impossible by construction.
    """
    merged = MetricsRegistry()
    reachable = 0
    for client in clients:
        try:
            snapshot = client.metrics()
        except ServeError:
            continue
        merged.merge(snapshot)
        reachable += 1
    out = merged.snapshot()
    out["cluster.nodes_reporting"] = {"type": "gauge",
                                      "value": float(reachable)}
    return out
