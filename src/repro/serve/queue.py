"""Bounded priority job queue with admission control.

The queue is the service's backpressure point: it holds at most
``maxsize`` admitted jobs, orders them by (priority, admission
sequence) -- smaller priority first, FIFO within a priority -- and
refuses further admissions with :class:`QueueFull`, which carries a
``Retry-After`` estimate derived from observed job latency.  The
estimate is intentionally conservative: depth x recent mean job
seconds / worker concurrency, clamped to a sane range, so clients
back off long enough for the backlog to actually drain.

Single-loop discipline: ``put_nowait`` / ``get`` are asyncio-native
and must be called from the server's event loop; execution happens in
a thread executor, never here.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools

from ..errors import ConfigError, ReproError
from .protocol import Job, JobState

#: Retry-After clamp (seconds): never tell a client "0", never more
#: than two minutes.
RETRY_AFTER_MIN, RETRY_AFTER_MAX = 1.0, 120.0

#: Seed latency estimate (seconds per job) before any job completes.
DEFAULT_JOB_S = 5.0

#: EWMA weight for new latency observations.
_LATENCY_ALPHA = 0.3


class QueueFull(ReproError):
    """The job queue is at capacity.

    Attributes:
        retry_after_s: suggested client backoff, in seconds.
    """

    def __init__(self, depth: int, retry_after_s: float):
        self.depth = depth
        self.retry_after_s = retry_after_s
        super().__init__(
            f"job queue full ({depth} queued); retry in "
            f"{retry_after_s:.0f}s")


class JobQueue:
    """Bounded asyncio priority queue of :class:`Job` records.

    Args:
        maxsize: admission bound (queued jobs only; running jobs have
            already left the queue).
        concurrency: worker coroutines draining the queue -- used only
            to scale the Retry-After estimate.
    """

    def __init__(self, maxsize: int = 64, concurrency: int = 2):
        if maxsize < 1:
            raise ConfigError(f"queue maxsize must be >= 1: {maxsize}")
        if concurrency < 1:
            raise ConfigError(f"concurrency must be >= 1: {concurrency}")
        self.maxsize = maxsize
        self.concurrency = concurrency
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._waiters: list[asyncio.Future] = []
        self._mean_job_s = DEFAULT_JOB_S

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.maxsize

    # -- latency / backpressure ------------------------------------------

    def observe_latency(self, seconds: float) -> None:
        """Feed one completed-job latency into the Retry-After EWMA."""
        if seconds >= 0:
            self._mean_job_s += _LATENCY_ALPHA * (seconds
                                                  - self._mean_job_s)

    def retry_after(self) -> float:
        """Suggested backoff for a rejected client, in seconds."""
        backlog = len(self._heap) + 1  # the job that just got rejected
        estimate = backlog * self._mean_job_s / self.concurrency
        return min(RETRY_AFTER_MAX, max(RETRY_AFTER_MIN, estimate))

    # -- queue operations ------------------------------------------------

    def put_nowait(self, job: Job) -> None:
        """Admit ``job`` or raise :class:`QueueFull`."""
        if self.full:
            raise QueueFull(len(self._heap), self.retry_after())
        heapq.heappush(self._heap,
                       (job.request.priority, next(self._seq), job))
        self._wake_one()

    def _wake_one(self) -> None:
        while self._waiters:
            waiter = self._waiters.pop(0)
            if not waiter.done():
                waiter.set_result(None)
                return

    async def get(self) -> Job:
        """Wait for, then return, the most urgent queued job.

        Jobs cancelled while queued are dropped here rather than
        returned, so workers never observe them.
        """
        while True:
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                if job.state == JobState.CANCELLED:
                    continue
                return job
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            except asyncio.CancelledError:
                if waiter in self._waiters:
                    self._waiters.remove(waiter)
                raise
