"""The asyncio HTTP front end of the experiment service.

A deliberately small, stdlib-only HTTP/1.1 server over
``asyncio.start_server``: one request per connection, JSON bodies,
chunked transfer for the event stream.  All admission-control
decisions (rate limit, queue bound, drain) surface as proper HTTP
semantics -- ``429`` with ``Retry-After`` for backpressure, ``503``
with ``Retry-After`` while draining -- so ordinary HTTP clients
behave correctly against it.

Endpoints::

    GET    /                 service document
    GET    /healthz          liveness + queue/drain state
    GET    /metrics          JSON snapshot of the obs metrics registry
    POST   /jobs             submit a job (202 queued, 200 cached/coalesced)
    GET    /jobs             list jobs
    GET    /jobs/<id>        job status
    GET    /jobs/<id>/result result summary (409 + Retry-After until done)
    GET    /jobs/<id>/events chunked JSON stream of state transitions
    DELETE /jobs/<id>        cancel a queued job
    GET    /store/<key>      raw pickled store object (cluster merge)
    POST   /drain            begin graceful drain (idempotent)

Lifecycle: ``SIGTERM``/``SIGINT`` trigger the same graceful drain as
``POST /drain`` -- stop admitting, finish (or leave checkpointed) the
in-flight jobs, then exit.  :class:`ServerThread` runs the whole
server on a background thread for tests and embedding.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time
from typing import Mapping

from .. import __version__
from ..errors import ConfigError
from ..obs.metrics import REGISTRY as _METRICS
from ..store.artifacts import ArtifactStore
from .jobs import JobManager, ServiceDraining
from .limits import ClientRateLimiter, RateLimited
from .protocol import JobRequest, JobState
from .queue import QueueFull

#: Bounds on what we will read from a socket.
MAX_REQUEST_LINE = 4096
MAX_HEADERS = 64
MAX_BODY_BYTES = 4 * 1024 * 1024

#: Poll interval for the event stream (seconds).
EVENT_POLL_S = 0.05

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _HttpError(Exception):
    """Internal: abort the request with a status + JSON error body."""

    def __init__(self, status: int, message: str,
                 headers: Mapping[str, str] | None = None):
        self.status = status
        self.message = message
        self.headers = dict(headers or {})
        super().__init__(message)


def _retry_after_header(seconds: float) -> dict[str, str]:
    return {"Retry-After": str(max(1, int(round(seconds))))}


class ReproServer:
    """The experiment service: HTTP front end over a :class:`JobManager`.

    Args:
        manager: the job manager (owns queue, executors, store).
        host / port: bind address; ``port=0`` picks a free port
            (exposed via :attr:`port` after :meth:`start`).
        limiter: per-client token-bucket admission limiter; ``None``
            installs the default (2 jobs/s sustained, burst 10).
        drain_grace_s: how long a drain waits for in-flight jobs.
    """

    def __init__(self, manager: JobManager, host: str = "127.0.0.1",
                 port: int = 8765,
                 limiter: ClientRateLimiter | None = None,
                 drain_grace_s: float = 30.0):
        self.manager = manager
        self.host = host
        self.port = port
        self.limiter = limiter if limiter is not None \
            else ClientRateLimiter()
        self.drain_grace_s = drain_grace_s
        self.started_at = 0.0
        self._server: asyncio.AbstractServer | None = None
        self._stopped = asyncio.Event()
        self._shutdown_task: asyncio.Task | None = None
        self._metrics = _METRICS.scoped("serve")
        self.drain_clean: bool | None = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Start the manager workers and bind the listening socket."""
        await self.manager.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_at = time.time()

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def request_shutdown(self) -> None:
        """Begin graceful drain + stop (idempotent, signal-safe)."""
        if self._shutdown_task is None:
            self._shutdown_task = asyncio.ensure_future(self._shutdown())

    async def _shutdown(self) -> None:
        self.drain_clean = await self.manager.drain(self.drain_grace_s)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._stopped.set()

    async def wait_stopped(self) -> None:
        await self._stopped.wait()

    # -- connection handling ---------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path = await self._read_request_line(reader)
                headers = await self._read_headers(reader)
                body = await self._read_body(reader, headers)
            except _HttpError as exc:
                await self._respond_error(writer, exc)
                return
            self._metrics.counter("http_requests").inc()
            try:
                await self._route(method, path, headers, body, writer)
            except _HttpError as exc:
                await self._respond_error(writer, exc)
            except Exception as exc:  # never kill the server loop
                self._metrics.counter("http_errors").inc()
                await self._respond_error(writer, _HttpError(
                    500, f"{type(exc).__name__}: {exc}"))
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-request
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request_line(self, reader) -> tuple[str, str]:
        line = await reader.readline()
        if not line:
            raise _HttpError(400, "empty request")
        if len(line) > MAX_REQUEST_LINE:
            raise _HttpError(400, "request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _HttpError(400, f"malformed request line: {parts!r}")
        return parts[0].upper(), parts[1]

    async def _read_headers(self, reader) -> dict[str, str]:
        headers: dict[str, str] = {}
        for _ in range(MAX_HEADERS + 1):
            line = await reader.readline()
            if len(line) > MAX_REQUEST_LINE:
                raise _HttpError(400, "header line too long")
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _HttpError(400, f"malformed header: {line!r}")
            headers[name.strip().lower()] = value.strip()
        raise _HttpError(400, "too many headers")

    async def _read_body(self, reader, headers) -> bytes:
        length = headers.get("content-length")
        if length is None:
            return b""
        try:
            n = int(length)
        except ValueError:
            raise _HttpError(400, f"bad Content-Length: {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise _HttpError(413, f"body too large: {n} bytes")
        return await reader.readexactly(n) if n else b""

    # -- responses -------------------------------------------------------

    async def _respond(self, writer, status: int, payload,
                       headers: Mapping[str, str] | None = None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode()
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    async def _respond_bytes(self, writer, status: int,
                             body: bytes) -> None:
        """Raw binary response (the store-fetch endpoint)."""
        head = [f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
                "Content-Type: application/octet-stream",
                f"Content-Length: {len(body)}",
                "Connection: close"]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    async def _respond_error(self, writer, exc: _HttpError) -> None:
        await self._respond(writer, exc.status,
                            {"error": exc.message,
                             "status": exc.status}, exc.headers)

    # -- routing ---------------------------------------------------------

    async def _route(self, method: str, path: str, headers, body,
                     writer) -> None:
        path = path.split("?", 1)[0]
        if path == "/" and method == "GET":
            await self._respond(writer, 200, {
                "service": "repro-serve", "version": __version__,
                "endpoints": ["/healthz", "/metrics", "/jobs",
                              "/jobs/<id>", "/jobs/<id>/result",
                              "/jobs/<id>/events", "/store/<key>",
                              "/drain"]})
            return
        if path == "/healthz" and method == "GET":
            stats = self.manager.stats()
            await self._respond(writer, 200, {
                "status": "draining" if self.manager.draining else "ok",
                "uptime_s": time.time() - self.started_at,
                **stats})
            return
        if path == "/metrics" and method == "GET":
            self._metrics.gauge("queue_depth").set(
                len(self.manager.queue))
            self._metrics.gauge("running").set(
                len(self.manager.running))
            await self._respond(writer, 200,
                                {"metrics": _METRICS.snapshot()})
            return
        if path == "/drain" and method == "POST":
            self.request_shutdown()
            await self._respond(writer, 202, {"status": "draining"})
            return
        if path == "/jobs" and method == "POST":
            await self._submit(headers, body, writer)
            return
        if path == "/jobs" and method == "GET":
            await self._respond(writer, 200, {
                "jobs": [job.to_dict()
                         for job in self.manager.jobs.values()]})
            return
        if path.startswith("/jobs/"):
            await self._job_route(method, path, writer)
            return
        if path.startswith("/store/") and method == "GET":
            await self._store_fetch(path[len("/store/"):], writer)
            return
        raise _HttpError(404, f"no such endpoint: {method} {path}")

    async def _store_fetch(self, key: str, writer) -> None:
        """``GET /store/<key>``: the raw pickled object bytes.

        The cluster-merge transfer endpoint: peers pull completed
        artifacts (per-path results, serve-job payloads) by content
        address and write them into their own stores byte-for-byte.
        """
        store = self.manager.store
        if store is None:
            raise _HttpError(503, "this server runs without a store")
        try:
            data = store.get_bytes(key)
        except ConfigError as exc:
            raise _HttpError(400, str(exc))
        if data is None:
            raise _HttpError(404, f"no store object {key[:16]}...")
        self._metrics.counter("store_fetches").inc()
        self._metrics.counter("store_fetch_bytes").inc(len(data))
        await self._respond_bytes(writer, 200, data)

    def _client_identity(self, headers, request: JobRequest,
                         writer) -> str:
        if request.client != "anonymous":
            return request.client
        header = headers.get("x-repro-client")
        if header:
            return header
        peer = writer.get_extra_info("peername")
        return peer[0] if peer else "unknown"

    async def _submit(self, headers, body, writer) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"bad JSON body: {exc}")
        try:
            request = JobRequest.from_dict(payload)
        except ConfigError as exc:
            raise _HttpError(400, str(exc))
        client = self._client_identity(headers, request, writer)
        try:
            self.limiter.check(client)
        except RateLimited as exc:
            self._metrics.counter("jobs_rejected_rate").inc()
            raise _HttpError(429, str(exc),
                             _retry_after_header(exc.retry_after_s))
        try:
            job, disposition = self.manager.submit(request)
        except ServiceDraining as exc:
            raise _HttpError(503, str(exc), _retry_after_header(5.0))
        except QueueFull as exc:
            self._metrics.counter("jobs_rejected_full").inc()
            raise _HttpError(429, str(exc),
                             _retry_after_header(exc.retry_after_s))
        except ConfigError as exc:
            raise _HttpError(400, str(exc))
        status = 202 if disposition == "queued" else 200
        await self._respond(writer, status,
                            {**job.to_dict(),
                             "disposition": disposition})

    async def _job_route(self, method: str, path: str, writer) -> None:
        parts = path.strip("/").split("/")
        job = self.manager.get_job(parts[1])
        if job is None:
            raise _HttpError(404, f"no such job: {parts[1]}")
        tail = parts[2] if len(parts) > 2 else ""
        if method == "DELETE" and not tail:
            ok, reason = self.manager.cancel(job.id)
            if not ok:
                raise _HttpError(409, f"cannot cancel: {reason}")
            await self._respond(writer, 200, job.to_dict())
            return
        if method != "GET":
            raise _HttpError(405, f"{method} not allowed here")
        if not tail:
            await self._respond(writer, 200, job.to_dict())
            return
        if tail == "result":
            if not job.terminal:
                raise _HttpError(409, f"job {job.id} is {job.state}",
                                 _retry_after_header(1.0))
            await self._respond(writer, 200, job.to_dict())
            return
        if tail == "events":
            await self._stream_events(job, writer)
            return
        raise _HttpError(404, f"no such endpoint: {path}")

    async def _stream_events(self, job, writer) -> None:
        """Chunked JSON-lines stream of job state transitions."""
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n")
        writer.write(head.encode())
        last_version = -1
        while True:
            if job.version != last_version:
                last_version = job.version
                line = (json.dumps(job.to_dict(), sort_keys=True)
                        + "\n").encode()
                writer.write(f"{len(line):x}\r\n".encode() + line
                             + b"\r\n")
                await writer.drain()
            if job.terminal:
                break
            await asyncio.sleep(EVENT_POLL_S)
        writer.write(b"0\r\n\r\n")
        await writer.drain()


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------


#: Default sentinel: ``serve_main(store=...)`` omitted means "the
#: default :class:`ArtifactStore`"; an explicit ``None`` disables the
#: store (no cache hits, no journal).
_AUTO_STORE = object()


async def serve_main(host: str = "127.0.0.1", port: int = 8765,
                     store=_AUTO_STORE,
                     queue_depth: int = 64, concurrency: int = 2,
                     job_workers: int | None = None,
                     timeout_s: float | None = None,
                     rate: float = 2.0, burst: float = 10.0,
                     drain_grace_s: float = 30.0,
                     ready=None) -> bool:
    """Run the service until a signal (or drain request) stops it.

    Returns True when the final drain was clean (no job left behind).
    """
    manager = JobManager(
        store=ArtifactStore() if store is _AUTO_STORE else store,
        queue_depth=queue_depth, concurrency=concurrency,
        job_workers=job_workers, timeout_s=timeout_s)
    server = ReproServer(manager, host=host, port=port,
                         limiter=ClientRateLimiter(rate=rate,
                                                   burst=burst),
                         drain_grace_s=drain_grace_s)
    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread or platform without signal support
    print(f"repro-serve listening on {server.address} "
          f"(queue={queue_depth}, concurrency={concurrency})",
          flush=True)
    if ready is not None:
        ready(server)
    await server.wait_stopped()
    clean = bool(server.drain_clean)
    print(f"repro-serve drained "
          f"{'cleanly' if clean else 'with jobs left checkpointed'}",
          flush=True)
    return clean


class ServerThread:
    """Run a :class:`ReproServer` on a background thread.

    For tests and embedding: starts the server (``port=0`` by default,
    so an OS-assigned free port), exposes :attr:`port`, and stops it
    with the same graceful drain as SIGTERM.  Usable as a context
    manager.
    """

    def __init__(self, manager: JobManager | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 limiter: ClientRateLimiter | None = None,
                 drain_grace_s: float = 10.0, **manager_kwargs):
        if manager is None:
            manager = JobManager(**manager_kwargs)
        self.manager = manager
        self._host = host
        self._port = port
        self._limiter = limiter
        self._drain_grace_s = drain_grace_s
        self._ready = threading.Event()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self.server: ReproServer | None = None
        self.error: BaseException | None = None

    @property
    def port(self) -> int:
        assert self.server is not None
        return self.server.port

    @property
    def address(self) -> str:
        assert self.server is not None
        return self.server.address

    async def _main(self) -> None:
        try:
            self.server = ReproServer(
                self.manager, host=self._host, port=self._port,
                limiter=self._limiter,
                drain_grace_s=self._drain_grace_s)
            await self.server.start()
            self._loop = asyncio.get_running_loop()
        except BaseException as exc:
            self.error = exc
            self._ready.set()
            raise
        self._ready.set()
        await self.server.wait_stopped()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name="repro-serve", daemon=True)
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self.error is not None:
            raise self.error
        if self.server is None:
            raise ConfigError("server thread failed to start")
        return self

    def stop(self, timeout: float = 30.0) -> bool:
        """Graceful drain + stop; True when the drain was clean."""
        if self._loop is not None and self.server is not None:
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        return bool(self.server.drain_clean) if self.server else False

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False
