"""``repro.serve``: the always-on experiment service.

Every other layer in this repo is batch-shaped -- one process, one
campaign, exit.  The paper's operational framing is the opposite: §3.1
is a continuously-running passive pipeline over M-Lab NDT (a 24/7
measurement service) and §3.2's Nimbus probes ship embedded in live
senders.  This package gives the reproduction that shape: a long-lived
asyncio HTTP service that accepts experiment requests as JSON, runs
them on the existing runtime/store machinery, and streams results
back.

The production-robustness core:

* **Idempotent admission** -- requests are fingerprinted with
  :func:`repro.store.fingerprint` on arrival; completed fingerprints
  are answered straight from the artifact store (no execution) and
  identical in-flight requests coalesce onto one execution.
* **Backpressure** -- a bounded priority queue; when it is full,
  clients get ``429`` with a latency-derived ``Retry-After``.
* **Rate limiting** -- per-client token buckets at admission.
* **Graceful drain** -- ``SIGTERM`` (or ``POST /drain``) stops
  admission and lets in-flight jobs finish; anything still unfinished
  stays journaled and store-checkpointed, so a restarted server
  resumes it.
* **Observability** -- ``/healthz`` and ``/metrics`` export the
  :mod:`repro.obs` registry plus serve-specific queue/admission/
  coalescing/latency instruments.

See SERVING.md for the API reference and lifecycle details.
"""

from .client import JobFailed, ServeClient, ServeError
from .jobs import (EXECUTORS, JobManager, ServiceDraining,
                   campaign_from_params)
from .limits import ClientRateLimiter, RateLimited, TokenBucket
from .protocol import Job, JobRequest, JobState
from .queue import JobQueue, QueueFull
from .server import ReproServer, ServerThread, serve_main

__all__ = [
    "ClientRateLimiter", "EXECUTORS", "Job", "JobFailed", "JobManager",
    "JobQueue", "JobRequest", "JobState", "QueueFull", "RateLimited",
    "ReproServer", "ServeClient", "ServeError", "ServerThread",
    "ServiceDraining", "TokenBucket", "campaign_from_params",
    "serve_main",
]
