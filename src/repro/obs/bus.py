"""Structured event-trace bus.

Every instrumented component (links, qdiscs, CCAs, transport endpoints)
emits :class:`TraceEvent` records through one process-global
:class:`TraceBus`.  The bus is *disabled* unless someone subscribes, and
every emission site is guarded by a single attribute check::

    if _OBS.enabled:
        _OBS.emit(now, EventKind.DROP, self.obs_name, packet.flow_id,
                  packet.size)

so the cost with no subscribers is one attribute load and a falsy
branch -- the simulator's hot paths stay hot.

Subscribers are plain callables ``fn(event)``; :func:`capture` collects
events into a list for tests and analysis, :class:`JsonlTraceWriter`
streams them to disk for ``repro trace``.
"""

from __future__ import annotations

import json
from typing import Callable, Iterable, Mapping, Optional, TextIO


class EventKind:
    """Event-type vocabulary (plain strings so events serialize as-is).

    Queue/link events carry the packet size in ``value``:

    * ``ENQUEUE`` -- a qdisc accepted a packet.
    * ``DEQUEUE`` -- a qdisc handed a packet to the link.
    * ``DROP`` -- a packet was dropped; ``meta["enqueued"]`` tells
      whether it had previously been accepted (AQM/overflow eviction)
      or was refused at admission (tail drop).
    * ``MARK`` -- ECN congestion-experienced mark instead of a drop.
    * ``DELIVER`` -- a link finished serializing a packet downstream.

    Endpoint/CCA events:

    * ``CWND`` -- congestion window update; ``value`` is the window in
      packets, ``meta["pacing_rate"]`` the pacing rate when one is set
      and ``meta["cause"]`` the trigger for loss/RTO cuts.
    * ``RATE`` -- explicit pacing/base-rate change (rate-based CCAs).
    * ``MODE`` -- CCA mode/state switch (BBR state machine, Nimbus
      delay<->tcp); ``meta["from"]``/``meta["to"]`` name the modes.
    * ``PULSE`` -- one Nimbus pulse-phase sample; ``value`` is the
      cross-traffic estimate ẑ for that bin, ``meta["elasticity"]``
      the reading when the bin completed an estimator window.
    * ``LOSS`` / ``RTO`` -- transport loss events.

    Shared-medium (CSMA/CA) events, emitted by
    :class:`~repro.sim.medium.MediumLink` with ``meta["station"]``:

    * ``MEDIUM_DEFER`` -- a station found the medium busy on arrival
      and deferred under the NAV; ``value`` is the remaining busy time.
    * ``MEDIUM_TXOP`` -- a station won the contention round and is
      transmitting alone; ``value`` is the frame size and
      ``meta["duration"]`` the airtime consumed.
    * ``MEDIUM_COLLISION`` -- two or more backoff counters expired in
      the same slot; one event per colliding station, with
      ``meta["duration"]`` (shared airtime) and ``meta["colliders"]``.
    * ``MEDIUM_BACKOFF`` -- a station drew a fresh backoff counter;
      ``value`` is the counter, ``meta["cw"]`` the window it came from.

    Engine events:

    * ``SIM_START`` -- a new :class:`~repro.sim.engine.Simulator` was
      created (resets per-run invariant state).
    * ``SIM_RUN`` -- one ``run()`` call started or completed;
      ``meta["phase"]`` is "begin" or "end", and the end event's
      ``value`` is the number of callbacks executed.
    """

    ENQUEUE = "enqueue"
    DEQUEUE = "dequeue"
    DROP = "drop"
    MARK = "mark"
    DELIVER = "deliver"
    CWND = "cwnd"
    RATE = "rate"
    MODE = "mode"
    PULSE = "pulse"
    LOSS = "loss"
    RTO = "rto"
    MEDIUM_DEFER = "medium.defer"
    MEDIUM_TXOP = "medium.txop"
    MEDIUM_COLLISION = "medium.collision"
    MEDIUM_BACKOFF = "medium.backoff"
    SIM_START = "sim_start"
    SIM_RUN = "sim_run"

    #: kinds participating in queue byte-conservation accounting
    QUEUE_KINDS = frozenset({ENQUEUE, DEQUEUE, DROP})

    #: kinds emitted by the shared-medium MAC layer
    MEDIUM_KINDS = frozenset({MEDIUM_DEFER, MEDIUM_TXOP,
                              MEDIUM_COLLISION, MEDIUM_BACKOFF})


class TraceEvent:
    """One structured trace record.

    Attributes:
        time: simulation time of the event (seconds).
        kind: one of the :class:`EventKind` constants.
        src: emitting component ("qdisc:droptailqueue-3", "link:bottleneck",
            "cca:reno", "tcp:flow-1", "sim").
        flow: flow id the event concerns ("" when not flow-scoped).
        value: the event's primary scalar (packet size, cwnd, ...).
        meta: optional small mapping of extra fields.
    """

    __slots__ = ("time", "kind", "src", "flow", "value", "meta")

    def __init__(self, time: float, kind: str, src: str, flow: str = "",
                 value: float = 0.0,
                 meta: Optional[Mapping] = None):
        self.time = time
        self.kind = kind
        self.src = src
        self.flow = flow
        self.value = value
        self.meta = meta

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the JSONL writer)."""
        d = {"t": self.time, "kind": self.kind, "src": self.src}
        if self.flow:
            d["flow"] = self.flow
        if self.value:
            d["value"] = self.value
        if self.meta:
            d["meta"] = dict(self.meta)
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<TraceEvent t={self.time:.6f} {self.kind} {self.src}"
                f"{' ' + self.flow if self.flow else ''} {self.value}>")


Subscriber = Callable[[TraceEvent], None]


class TraceBus:
    """Fan-out point for trace events.

    ``enabled`` mirrors "has at least one subscriber"; emission sites
    check it before building the event object, so a disabled bus costs
    nothing but the check.
    """

    __slots__ = ("enabled", "_subscribers")

    def __init__(self):
        self.enabled = False
        self._subscribers: list[Subscriber] = []

    def subscribe(self, fn: Subscriber) -> None:
        """Register ``fn(event)``; enables the bus."""
        if fn not in self._subscribers:
            self._subscribers.append(fn)
        self.enabled = True

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove a subscriber; disables the bus when none remain."""
        try:
            self._subscribers.remove(fn)
        except ValueError:
            pass
        self.enabled = bool(self._subscribers)

    def emit(self, time: float, kind: str, src: str, flow: str = "",
             value: float = 0.0, meta: Optional[Mapping] = None) -> None:
        """Deliver one event to every subscriber."""
        event = TraceEvent(time, kind, src, flow, value, meta)
        for fn in self._subscribers:
            fn(event)


#: The process-global bus every instrumented component emits into.
BUS = TraceBus()


class capture:
    """Context manager collecting events into :attr:`events`.

    >>> from repro.obs.bus import BUS, EventKind, capture
    >>> with capture() as trace:
    ...     BUS.emit(0.5, EventKind.DROP, "qdisc:q", "f1", 1500)
    >>> [(e.kind, e.flow) for e in trace.events]
    [('drop', 'f1')]

    Args:
        kinds: restrict collection to these event kinds (None = all).
        bus: the bus to tap (default: the global one).
    """

    def __init__(self, kinds: Optional[Iterable[str]] = None,
                 bus: TraceBus = BUS):
        self.events: list[TraceEvent] = []
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._bus = bus

    def _collect(self, event: TraceEvent) -> None:
        if self._kinds is None or event.kind in self._kinds:
            self.events.append(event)

    def __enter__(self) -> "capture":
        self._bus.subscribe(self._collect)
        return self

    def __exit__(self, *exc) -> bool:
        self._bus.unsubscribe(self._collect)
        return False

    def counts_by_kind(self) -> dict[str, int]:
        """Event counts per kind (the golden-trace digest input)."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))


class JsonlTraceWriter:
    """Stream events to a JSONL file (one event per line).

    Use as a context manager so the file is flushed and closed; pairs
    with ``repro trace <experiment> --out trace.jsonl``.
    """

    def __init__(self, path, kinds: Optional[Iterable[str]] = None,
                 bus: TraceBus = BUS):
        self.path = path
        self.count = 0
        self.counts: dict[str, int] = {}
        self._kinds = frozenset(kinds) if kinds is not None else None
        self._bus = bus
        self._file: Optional[TextIO] = None

    def _write(self, event: TraceEvent) -> None:
        if self._kinds is not None and event.kind not in self._kinds:
            return
        assert self._file is not None
        self._file.write(json.dumps(event.to_dict()) + "\n")
        self.count += 1
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def __enter__(self) -> "JsonlTraceWriter":
        self._file = open(self.path, "w")
        self._bus.subscribe(self._write)
        return self

    def __exit__(self, *exc) -> bool:
        self._bus.unsubscribe(self._write)
        if self._file is not None:
            self._file.close()
            self._file = None
        return False
