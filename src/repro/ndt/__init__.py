"""M-Lab NDT substrate: schema, synthetic population, collection, and
the §3.1 passive analysis pipeline."""

from .collect import NdtCollector
from .filters import (FlowCategory, categorize, infer_cellular,
                      is_app_limited, is_rwnd_limited)
from .pipeline import (Fig2Result, FlowAnalysis, QualityTally, ShardRow,
                       analyse_flow, run_pipeline)
from .schema import ACCESS_TYPES, NdtDataset, NdtRecord
from .stream import (ShardSpec, analyse_shard, merge_partials,
                     run_pipeline_streaming, shard_specs)
from .synth import (DEFAULT_ACCESS_MIX, DEFAULT_CCA_MIX, DEFAULT_CHUNK_SIZE,
                    DEFAULT_PLAN_MIX, PopulationModel,
                    SyntheticNdtGenerator)

__all__ = [
    "NdtRecord", "NdtDataset", "ACCESS_TYPES",
    "PopulationModel", "SyntheticNdtGenerator",
    "DEFAULT_PLAN_MIX", "DEFAULT_ACCESS_MIX", "DEFAULT_CCA_MIX",
    "DEFAULT_CHUNK_SIZE",
    "FlowCategory", "categorize", "is_app_limited", "is_rwnd_limited",
    "infer_cellular",
    "run_pipeline", "analyse_flow", "Fig2Result", "FlowAnalysis",
    "QualityTally", "ShardRow",
    "ShardSpec", "shard_specs", "analyse_shard", "merge_partials",
    "run_pipeline_streaming",
    "NdtCollector",
]
