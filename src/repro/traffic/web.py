"""Web-browsing ON/OFF workload.

A user "clicks" at random think-time intervals; each click fetches a
page: a burst of parallel short transfers (HTML + assets).  Between
clicks the connection pool is idle.  This is the short-flow,
application-limited traffic §2.2 says dominates flow counts.
"""

from __future__ import annotations

import numpy as np

from ..cca.cubic import CubicCca
from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..tcp.endpoint import Connection
from .base import TrafficSource


class WebBrowsingUser(TrafficSource):
    """One browsing user: think, click, fetch a page, repeat.

    Args:
        think_time: mean exponential think time between clicks (s).
        objects_per_page: mean number of objects per page (geometric).
        object_mean_bytes: mean object size (log-normal).
        parallelism: maximum simultaneous connections per page.
    """

    def __init__(self, sim: Simulator, path: PathHandles,
                 think_time: float = 5.0, objects_per_page: float = 8.0,
                 object_mean_bytes: float = 80_000,
                 parallelism: int = 6, cca_factory=CubicCca,
                 seed: int = 0, prefix: str = "web", user_id: str = ""):
        if think_time <= 0 or objects_per_page < 1:
            raise ConfigError("invalid think_time or objects_per_page")
        self.sim = sim
        self.path = path
        self.think_time = think_time
        self.objects_per_page = objects_per_page
        self.object_mean_bytes = object_mean_bytes
        self.parallelism = parallelism
        self.cca_factory = cca_factory
        self.prefix = prefix
        self.user_id = user_id or prefix
        self._rng = np.random.default_rng(seed)
        self._running = False
        self._counter = 0
        self._delivered = 0
        self.pages_loaded = 0
        self.page_load_times: list[float] = []

    def start(self) -> None:
        self._running = True
        self.sim.schedule(self._rng.exponential(self.think_time),
                          self._click)

    def stop(self) -> None:
        self._running = False

    def _click(self) -> None:
        if not self._running:
            return
        n_objects = 1 + int(self._rng.geometric(
            1.0 / self.objects_per_page))
        sizes = [max(500, int(self._rng.lognormal(
            np.log(self.object_mean_bytes) - 0.5, 1.0)))
            for _ in range(n_objects)]
        page_start = self.sim.now
        pending = {"objects": list(sizes), "inflight": 0}

        def fetch_more():
            while (pending["objects"]
                    and pending["inflight"] < self.parallelism):
                size = pending["objects"].pop()
                pending["inflight"] += 1
                self._fetch_object(size, object_done)

        def object_done(now: float):
            pending["inflight"] -= 1
            if pending["objects"]:
                fetch_more()
            elif pending["inflight"] == 0:
                self.pages_loaded += 1
                self.page_load_times.append(now - page_start)
                self.sim.schedule(
                    self._rng.exponential(self.think_time), self._click)

        fetch_more()

    def _fetch_object(self, size: int, done) -> None:
        self._counter += 1
        flow_id = f"{self.prefix}-{self._counter}"
        conn = Connection(self.sim, self.path, flow_id, self.cca_factory(),
                          user_id=self.user_id,
                          on_data=lambda n, t: self._count(n))
        path = self.path

        def finished(now: float):
            path.dst_host.detach(flow_id)
            path.src_host.detach(flow_id)
            done(now)

        conn.sender.on_complete = finished
        conn.sender.write(size)
        conn.sender.close()

    def _count(self, nbytes: int) -> None:
        self._delivered += nbytes

    @property
    def delivered_bytes(self) -> int:
        return self._delivered
