"""Cluster membership: a static node list with liveness probing.

The fabric is deliberately coordinator-centric (no gossip, no
consensus): the operator names the ``repro serve`` nodes on the
command line (``--cluster host1:8765,host2:8765``), and the
coordinator probes each node's ``/healthz`` to decide who gets work.

A node that fails a probe (or a dispatch) is marked **down** with
exponential backoff: the first failure suspends it for
``backoff_base_s`` seconds, each consecutive failure doubles the
suspension up to ``backoff_max_s``, and a successful probe resets the
counter.  Dead nodes therefore cost one cheap connect-timeout every
backoff window instead of stalling the dispatch loop, and a restarted
node rejoins within a single window.
"""

from __future__ import annotations

import time
from typing import Callable, Sequence

from ..errors import ConfigError
from ..obs.metrics import REGISTRY as _METRICS
from ..serve.client import ServeClient, ServeError

#: Default serve port (mirrors ``repro serve``).
DEFAULT_PORT = 8765

#: Connect / read timeouts for probe and dispatch requests -- short,
#: because a hung node must cost the coordinator a bounded beat, not a
#: job lifetime (the ServeClient read timeout covers only the HTTP
#: exchange; job execution is awaited by *polling*, never blocking).
CONNECT_TIMEOUT_S = 2.0
READ_TIMEOUT_S = 10.0


def parse_cluster(spec: str | Sequence[str]) -> list[tuple[str, int]]:
    """Parse ``"host1:8765,host2"`` into ``(host, port)`` pairs.

    Accepts a comma-separated string or a sequence of ``host[:port]``
    entries; the port defaults to :data:`DEFAULT_PORT`.
    """
    if isinstance(spec, str):
        entries = [e.strip() for e in spec.split(",")]
    else:
        entries = [str(e).strip() for e in spec]
    entries = [e for e in entries if e]
    if not entries:
        raise ConfigError(f"empty cluster spec: {spec!r}")
    nodes: list[tuple[str, int]] = []
    for entry in entries:
        host, sep, port_s = entry.rpartition(":")
        if not sep:
            host, port_s = entry, str(DEFAULT_PORT)
        try:
            port = int(port_s)
        except ValueError:
            raise ConfigError(f"bad cluster node {entry!r}: port must "
                              f"be an integer")
        if not host or not 0 < port < 65536:
            raise ConfigError(f"bad cluster node {entry!r}")
        pair = (host, port)
        if pair not in nodes:
            nodes.append(pair)
    return nodes


def _metric_name(host: str, port: int) -> str:
    """A registry-safe per-node label (``host-port``)."""
    safe = "".join(c if c.isalnum() or c in "._-" else "-"
                   for c in host)
    return f"{safe}-{port}"


class Node:
    """One serve node and its liveness state."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.name = f"{host}:{port}"
        self.metric_name = _metric_name(host, port)
        self.up = False
        self.draining = False
        self.failures = 0          # consecutive probe/transport failures
        self.next_probe = 0.0      # earliest next probe (clock units)
        self.busy_until = 0.0      # 429 backpressure window
        self.last_health: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else f"down(x{self.failures})"
        return f"Node({self.name} {state})"


class Membership:
    """Probed liveness over a static node list.

    Args:
        nodes: ``(host, port)`` pairs (see :func:`parse_cluster`).
        probe: ``fn(node) -> healthz dict``; raises on failure.  The
            default builds a short-timeout :class:`ServeClient` and
            calls ``/healthz``.  Injectable for tests.
        clock: monotonic time source (injectable for tests).
        probe_interval_s: how often a live node is re-probed.
        backoff_base_s / backoff_max_s: the mark-down schedule.
    """

    def __init__(self, nodes: Sequence[tuple[str, int]],
                 probe: Callable[[Node], dict] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 probe_interval_s: float = 5.0,
                 backoff_base_s: float = 0.5,
                 backoff_max_s: float = 30.0):
        if not nodes:
            raise ConfigError("a cluster needs at least one node")
        self.nodes = [Node(host, port) for host, port in nodes]
        self.clock = clock
        self.probe = probe if probe is not None else self._default_probe
        self.probe_interval_s = probe_interval_s
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._metrics = _METRICS.scoped("cluster")

    @staticmethod
    def _default_probe(node: Node) -> dict:
        client = ServeClient(node.host, node.port,
                             timeout=READ_TIMEOUT_S,
                             connect_timeout=CONNECT_TIMEOUT_S,
                             client_id="cluster-coordinator")
        return client.healthz()

    # -- state transitions -----------------------------------------------

    def mark_down(self, node: Node) -> None:
        """One more consecutive failure: suspend with exponential
        backoff (0.5s, 1s, 2s, ... capped at ``backoff_max_s``)."""
        node.failures += 1
        node.up = False
        delay = min(self.backoff_max_s,
                    self.backoff_base_s * 2 ** (node.failures - 1))
        node.next_probe = self.clock() + delay
        self._metrics.counter(
            f"node.{node.metric_name}.marked_down").inc()

    def mark_up(self, node: Node, health: dict | None = None) -> None:
        node.failures = 0
        node.up = True
        node.draining = bool((health or {}).get("status") == "draining")
        node.last_health = dict(health or {})
        node.next_probe = self.clock() + self.probe_interval_s

    # -- probing ---------------------------------------------------------

    def tick(self) -> None:
        """Probe every node whose probe (or backoff) timer expired."""
        now = self.clock()
        for node in self.nodes:
            if now < node.next_probe:
                continue
            try:
                health = self.probe(node)
            except ServeError:
                self.mark_down(node)
                continue
            except Exception:
                self.mark_down(node)
                continue
            self.mark_up(node, health)
            self._metrics.counter(
                f"node.{node.metric_name}.probes_ok").inc()

    def live(self) -> list[Node]:
        """Nodes currently accepting work (up and not draining)."""
        return [n for n in self.nodes if n.up and not n.draining]

    def status(self) -> list[dict]:
        """One status row per node (``repro cluster status``)."""
        now = self.clock()
        return [{
            "node": n.name,
            "state": ("draining" if n.up and n.draining
                      else "up" if n.up else "down"),
            "consecutive_failures": n.failures,
            "retry_in_s": max(0.0, n.next_probe - now) if not n.up
            else 0.0,
            "health": dict(n.last_health),
        } for n in self.nodes]
