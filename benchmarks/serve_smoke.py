"""CI smoke for the experiment service: submit, cache, drain.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/serve_smoke.py

Starts a real ``repro serve`` subprocess against a throwaway store
root and asserts, over plain HTTP:

1. A submitted experiment job runs to completion and returns a sane
   summary.
2. Resubmitting the identical request is answered from the store
   (``disposition == "cached"``) with a byte-identical summary and no
   second execution (checked via ``/metrics``).
3. SIGTERM triggers a graceful drain: the process exits 0 and reports
   a clean drain on stdout.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

SERVER_STARTUP_S = 30
JOB_TIMEOUT_S = 120


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}{': ' + detail if detail else ''}")
    if not condition:
        raise SystemExit(f"serve smoke failed: {label} ({detail})")


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for_server(client, deadline):
    while time.time() < deadline:
        try:
            return client.healthz()
        except Exception:
            time.sleep(0.2)
    raise SystemExit("serve smoke failed: server never became healthy")


def main():
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..",
                                    "src"))
    from repro.serve import ServeClient

    port = free_port()
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        env = dict(os.environ, REPRO_STORE=os.path.join(tmp, "store"),
                   PYTHONPATH="src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--port", str(port), "--concurrency", "1",
             "--rate", "0"],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            client = ServeClient(port=port, client_id="ci-smoke",
                                 timeout=10.0)
            health = wait_for_server(
                client, time.time() + SERVER_STARTUP_S)
            check("server healthy", health["status"] == "ok",
                  json.dumps(health))

            request = ("experiment", {"experiment": "fig2",
                                      "smoke": True})
            t0 = time.time()
            first = client.submit_and_wait(*request,
                                           timeout=JOB_TIMEOUT_S)
            check("job completed", first["state"] == "done",
                  f"{time.time() - t0:.1f}s")
            check("summary present",
                  first["summary"]["experiment"] == "fig2")

            second = client.submit(*request)
            check("resubmission served from store",
                  second.get("disposition") == "cached",
                  second.get("disposition", "?"))
            check("cached summary byte-identical",
                  json.dumps(second["summary"], sort_keys=True)
                  == json.dumps(first["summary"], sort_keys=True))

            metrics = client.metrics()
            check("exactly one execution",
                  metrics["serve.jobs_executed"]["value"] == 1)
            check("cache hit counted",
                  metrics["serve.jobs_cached"]["value"] == 1)
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            try:
                out, _ = proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()
                out, _ = proc.communicate()
                raise SystemExit(
                    "serve smoke failed: SIGTERM did not stop the "
                    f"server; output:\n{out}")
        check("clean exit code", proc.returncode == 0,
              str(proc.returncode))
        check("drain reported clean", "drained cleanly" in out,
              out.strip().splitlines()[-1] if out.strip() else "")
    print("serve smoke passed")


if __name__ == "__main__":
    main()
