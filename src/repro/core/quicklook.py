"""One-call elasticity quicklook, backing :func:`repro.quicklook_elasticity`."""

from __future__ import annotations

from dataclasses import dataclass

from ..medium import parse_medium
from ..sim.engine import Simulator
from ..sim.network import dumbbell, medium_dumbbell
from ..traffic.mix import make_cross_traffic
from ..units import mbps, ms, to_mbps
from .detector import ContentionDetector
from .probe import ElasticityProbe


@dataclass(frozen=True)
class QuicklookResult:
    """Summary of a single-path elasticity probe run."""

    cross_traffic: str
    mean_elasticity: float
    verdict: bool
    category: str
    probe_throughput_mbps: float
    duration: float


def run_quicklook(cross_traffic: str = "reno", duration: float = 30.0,
                  rate_mbps: float = 48.0, rtt_ms: float = 100.0,
                  seed: int = 0, medium: str = "queue") -> QuicklookResult:
    """Probe one emulated path carrying ``cross_traffic``.

    ``medium`` swaps the bottleneck queue for a CSMA/CA shared medium
    ("csma-<n>", optionally "-prio"); the probe and each cross flow
    then contend as separate stations.
    """
    sim = Simulator()
    spec = parse_medium(medium)
    if spec is None:
        path = dumbbell(sim, mbps(rate_mbps), ms(rtt_ms))
    else:
        path = medium_dumbbell(sim, mbps(rate_mbps), ms(rtt_ms), spec,
                               seed=seed)
    probe = ElasticityProbe(sim, path, capacity_hint=mbps(rate_mbps))
    probe.start()
    cross = make_cross_traffic(cross_traffic, sim, path, "cross", seed=seed)
    cross.start()
    sim.run(until=duration)
    report = probe.report()
    verdict = ContentionDetector().verdict(list(report.readings))
    return QuicklookResult(
        cross_traffic=cross_traffic,
        mean_elasticity=report.mean_elasticity,
        verdict=verdict.contending,
        category=verdict.category,
        probe_throughput_mbps=to_mbps(report.mean_throughput),
        duration=duration,
    )
