"""Blocking stdlib client for the experiment service.

:class:`ServeClient` wraps ``http.client`` (one connection per call --
the server is connection-per-request) with the service's semantics:
JSON in/out, typed :class:`ServeError` failures carrying the HTTP
status and the server's ``Retry-After`` hint, submit-and-wait
convenience, and an iterator over the chunked job event stream.

>>> client = ServeClient(port=8765)            # doctest: +SKIP
>>> job = client.submit("pipeline", {"flows": 500})   # doctest: +SKIP
>>> result = client.wait(job["id"])            # doctest: +SKIP
>>> result["summary"]["total"]                 # doctest: +SKIP
500
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Mapping

from ..errors import ReproError


class ServeError(ReproError):
    """An HTTP-level failure from the experiment service.

    Attributes:
        status: the HTTP status code (0 for transport failures).
        payload: the parsed JSON error document (may be empty).
        retry_after_s: the server's ``Retry-After`` hint, if any.
    """

    def __init__(self, status: int, message: str,
                 payload: Mapping | None = None,
                 retry_after_s: float | None = None):
        self.status = status
        self.payload = dict(payload or {})
        self.retry_after_s = retry_after_s
        super().__init__(f"HTTP {status}: {message}" if status
                         else message)


class JobFailed(ServeError):
    """A waited-on job reached a non-``done`` terminal state."""


class ServeClient:
    """Client for one ``repro serve`` instance.

    Args:
        host / port: where the server listens.
        timeout: per-request read timeout (seconds) -- how long one
            response may take once the connection is up.
        client_id: identity sent with every request (rate limiting);
            defaults to the server-observed peer address.
        connect_timeout: TCP connect timeout (seconds); defaults to
            ``timeout``.  Distinct from both the read timeout and any
            job-level deadline, so a hung or unreachable node fails a
            coordinator's dispatch attempt in ``connect_timeout``
            seconds instead of stalling it for a job's lifetime.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8765,
                 timeout: float = 30.0, client_id: str | None = None,
                 connect_timeout: float | None = None):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.client_id = client_id
        self.connect_timeout = (connect_timeout
                                if connect_timeout is not None
                                else timeout)

    # -- plumbing --------------------------------------------------------

    def _headers(self) -> dict[str, str]:
        headers = {"Content-Type": "application/json"}
        if self.client_id:
            headers["X-Repro-Client"] = self.client_id
        return headers

    def _connect(self) -> http.client.HTTPConnection:
        """Open one connection: connect under ``connect_timeout``, then
        rearm the socket with the read ``timeout``."""
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.connect_timeout)
        try:
            conn.connect()
        except (ConnectionError, OSError) as exc:
            conn.close()
            raise ServeError(0, f"cannot reach {self.host}:"
                                f"{self.port}: {exc}")
        if conn.sock is not None:
            conn.sock.settimeout(self.timeout)
        return conn

    def _request(self, method: str, path: str,
                 body: Mapping | None = None) -> dict:
        conn = self._connect()
        try:
            data = json.dumps(body).encode() if body is not None else None
            try:
                conn.request(method, path, body=data,
                             headers=self._headers())
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServeError(0, f"cannot reach {self.host}:"
                                    f"{self.port}: {exc}")
            try:
                payload = json.loads(raw.decode() or "{}")
            except ValueError:
                payload = {"error": raw.decode(errors="replace")}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServeError(
                    response.status,
                    payload.get("error", response.reason),
                    payload,
                    float(retry_after) if retry_after else None)
            return payload
        finally:
            conn.close()

    # -- service state ---------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The server's obs metrics registry snapshot."""
        return self._request("GET", "/metrics")["metrics"]

    def fetch_store(self, key: str) -> bytes:
        """Raw pickled object bytes from the server's artifact store.

        The cluster-merge transfer primitive (``GET /store/<key>``):
        the response body is exactly what the remote store holds under
        the content address ``key``, suitable for
        :meth:`repro.store.ArtifactStore.put_bytes`.

        Raises:
            ServeError: 404 on a missing key, 400 on a malformed one,
                503 when the server runs without a store, 0 on
                transport failures.
        """
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/store/{key}",
                             headers=self._headers())
                response = conn.getresponse()
                raw = response.read()
            except (ConnectionError, OSError) as exc:
                raise ServeError(0, f"cannot reach {self.host}:"
                                    f"{self.port}: {exc}")
            if response.status >= 400:
                try:
                    payload = json.loads(raw.decode() or "{}")
                except ValueError:
                    payload = {"error": raw.decode(errors="replace")}
                raise ServeError(response.status,
                                 payload.get("error", response.reason),
                                 payload)
            return raw
        finally:
            conn.close()

    def drain(self) -> dict:
        """Ask the server to drain and shut down gracefully."""
        return self._request("POST", "/drain")

    # -- jobs ------------------------------------------------------------

    def submit(self, kind: str, params: Mapping | None = None,
               priority: int = 5) -> dict:
        """Submit one job; returns the job status document.

        The response's ``disposition`` field says what happened:
        ``"cached"`` (already computed, ``summary`` is present),
        ``"coalesced"`` (an identical job is in flight; poll its id),
        or ``"queued"``.
        """
        body = {"kind": kind, "params": dict(params or {}),
                "priority": priority}
        if self.client_id:
            body["client"] = self.client_id
        return self._request("POST", "/jobs", body)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The terminal job document (raises 409 ServeError until then)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("DELETE", f"/jobs/{job_id}")

    def wait(self, job_id: str, timeout: float = 300.0,
             poll_s: float = 0.2) -> dict:
        """Poll until the job is terminal; return its result document.

        Raises:
            JobFailed: the job finished as failed/timeout/cancelled.
            ServeError: transport failures, or the wait timed out.
        """
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "failed", "timeout",
                                   "cancelled"):
                if status["state"] != "done":
                    raise JobFailed(
                        200, f"job {job_id} {status['state']}: "
                             f"{status.get('error', '')}", status)
                return status
            if time.monotonic() >= deadline:
                raise ServeError(
                    0, f"timed out after {timeout:g}s waiting for "
                       f"{job_id} (state: {status['state']})")
            time.sleep(poll_s)

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's state transitions until it is terminal.

        Yields one parsed JSON document per transition (the server's
        chunked NDJSON stream, decoded by ``http.client``).
        """
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/events",
                         headers=self._headers())
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    payload = json.loads(raw.decode() or "{}")
                except ValueError:
                    payload = {}
                raise ServeError(response.status,
                                 payload.get("error", response.reason),
                                 payload)
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode())
        finally:
            conn.close()

    def submit_and_wait(self, kind: str, params: Mapping | None = None,
                        priority: int = 5,
                        timeout: float = 300.0) -> dict:
        """Submit, then wait; cached submissions return immediately."""
        job = self.submit(kind, params, priority=priority)
        if job.get("disposition") == "cached":
            return job
        return self.wait(job["id"], timeout=timeout)
