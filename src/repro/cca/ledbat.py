"""LEDBAT: Low Extra Delay Background Transport (RFC 6817).

The scavenger CCA (BitTorrent uTP, macOS updates): target a small
fixed queueing delay and *yield entirely* to any other traffic that
pushes the delay past the target.  Relevant to the paper twice over:
software updates are §2.3's canonical example of persistently
backlogged flows, yet deployed update clients often use LEDBAT
precisely so they do not contend -- endpoint politeness as another
contention-eliminating mechanism.

cwnd += GAIN * off_target / cwnd per ACK, with
off_target = (TARGET - queuing_delay) / TARGET, and a loss halving.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl


class LedbatCca(CongestionControl):
    """LEDBAT window management.

    Args:
        target: target queueing delay (RFC 6817 says <= 100 ms;
            deployments use 25-60 ms).
        gain: window gain per off-target unit.
    """

    name = "ledbat"

    def __init__(self, mss: int = DEFAULT_MSS, initial_cwnd: float = 2.0,
                 target: float = 0.025, gain: float = 1.0):
        super().__init__(mss=mss)
        if target <= 0:
            raise ConfigError(f"target must be positive: {target}")
        self._cwnd = float(initial_cwnd)
        self.target = target
        self.gain = gain
        self.min_cwnd = 1.0

    @property
    def cwnd(self) -> float:
        return self._cwnd

    def on_ack(self, sample: AckSample) -> None:
        if sample.in_recovery:
            return
        if sample.rtt is None or sample.min_rtt is None:
            return
        queuing = max(0.0, sample.rtt - sample.min_rtt)
        off_target = (self.target - queuing) / self.target
        acked_packets = min(sample.acked_bytes / self.mss, 2.0)
        self._cwnd += self.gain * off_target * acked_packets / self._cwnd
        self._cwnd = max(self._cwnd, self.min_cwnd)

    def on_loss(self, now: float, lost_bytes: int) -> None:
        self._cwnd = max(self._cwnd / 2.0, self.min_cwnd)

    def on_rto(self, now: float) -> None:
        self._cwnd = self.min_cwnd
