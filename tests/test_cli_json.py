"""CLI contract tests: ``--json`` documents and uniform exit codes."""

import json

import pytest

from repro.cli import main


def _json_out(capsys):
    out = capsys.readouterr().out
    return json.loads(out)


class TestJsonOutput:
    def test_run_json_document(self, capsys):
        code = main(["run", "fig2", "--smoke", "--json"])
        assert code == 0
        doc = _json_out(capsys)
        assert doc["experiment"] == "fig2"
        assert doc["cached"] is False
        assert doc["written"] == []
        assert isinstance(doc["metrics"], dict) and doc["metrics"]
        assert doc["elapsed_s"] >= 0

    def test_run_json_cached_on_second_run(self, capsys):
        assert main(["run", "fig2", "--smoke", "--json"]) == 0
        first = _json_out(capsys)
        assert main(["run", "fig2", "--smoke", "--json"]) == 0
        second = _json_out(capsys)
        assert second["cached"] is True
        assert second["metrics"] == first["metrics"]

    def test_metrics_json_document(self, capsys):
        code = main(["metrics", "fig2", "--smoke", "--json"])
        assert code == 0
        doc = _json_out(capsys)
        assert doc["experiment"] == "fig2"
        assert isinstance(doc["metrics_registry"], dict)

    def test_trace_json_document(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl"
        code = main(["trace", "fig2", "--smoke", "--json",
                     "--out", str(out)])
        assert code == 0
        doc = _json_out(capsys)
        assert doc["experiment"] == "fig2"
        assert doc["out"] == str(out)
        assert doc["events"] >= 0 and isinstance(doc["counts"], dict)
        assert out.exists()

    def test_qa_corpus_json_document(self, capsys):
        code = main(["qa", "corpus", "--dir", "tests/corpus", "--json"])
        assert code == 0
        doc = _json_out(capsys)
        assert doc["dir"] == "tests/corpus"
        assert doc["replayed"] is False
        assert doc["total"] == len(doc["cases"]) > 0
        for case in doc["cases"]:
            assert {"name", "oracle", "label", "findings"} <= set(case)

    def test_qa_fuzz_json_document(self, capsys):
        code = main(["qa", "fuzz", "--budget", "2", "--seed", "0",
                     "--no-pool-check", "--no-shrink", "--json"])
        doc = _json_out(capsys)
        assert doc["budget"] == 2
        assert doc["passed"] + len(doc["failures"]) == 2
        assert code == (1 if doc["failures"] else 0)


class TestExitCodes:
    def test_unknown_experiment_is_usage_error(self, capsys):
        assert main(["run", "nosuch"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_unknown_subcommand_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            main(["nosuchcommand"])
        assert exc.value.code == 2

    def test_repro_error_exits_1(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        assert main(["run", "fig2", "--smoke", "--no-cache"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_serve_parser_wiring(self):
        """The serve subcommand parses its knobs (no server started)."""
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--queue-depth", "8",
             "--concurrency", "1", "--rate", "0", "--no-cache"])
        assert args.port == 0 and args.queue_depth == 8
        assert args.rate == 0.0 and args.no_cache
        assert args.fn.__name__ == "cmd_serve"
