"""Tests for Mahimahi trace parsing and synthesis."""

import pytest

from repro.errors import TraceFormatError
from repro.sim.trace import (OPPORTUNITY_BYTES, cellular_trace,
                             constant_rate_trace, format_trace, load_trace,
                             parse_trace, periodic_rate_trace)
from repro.units import mbps


class TestParse:
    def test_basic(self):
        assert parse_trace("1\n2\n5\n") == [1.0, 2.0, 5.0]

    def test_comments_and_blanks_skipped(self):
        assert parse_trace("# header\n\n3\n\n7\n") == [3.0, 7.0]

    def test_duplicate_timestamps_allowed(self):
        # Two opportunities in the same millisecond = 2 MTUs that ms.
        assert parse_trace("5\n5\n") == [5.0, 5.0]

    def test_non_integer_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("1.5\n")

    def test_decreasing_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("5\n3\n")

    def test_empty_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("# nothing\n")

    def test_negative_rejected(self):
        with pytest.raises(TraceFormatError):
            parse_trace("-3\n")

    def test_round_trip_via_file(self, tmp_path):
        path = tmp_path / "trace"
        path.write_text(format_trace([1, 2, 3]))
        assert load_trace(path) == [1.0, 2.0, 3.0]


class TestSynthesis:
    def test_constant_rate_opportunity_count(self):
        # rate * 1s / 1514B opportunities.
        trace = constant_rate_trace(12.0, 1000)
        expected = mbps(12.0) / OPPORTUNITY_BYTES
        assert len(trace) == pytest.approx(expected, rel=0.01)

    def test_constant_rate_evenly_spaced(self):
        trace = constant_rate_trace(12.112, 1000)
        gaps = [b - a for a, b in zip(trace, trace[1:])]
        assert max(gaps) - min(gaps) < 0.01

    def test_periodic_alternates_density(self):
        trace = periodic_rate_trace(2.0, 20.0, period_ms=2000,
                                    duration_ms=2000)
        first_half = sum(1 for t in trace if t <= 1000)
        second_half = len(trace) - first_half
        assert first_half > 5 * second_half

    def test_cellular_deterministic_and_positive(self):
        a = cellular_trace(20.0, duration_ms=2000, seed=3)
        b = cellular_trace(20.0, duration_ms=2000, seed=3)
        assert a == b
        assert all(t >= 0 for t in a)
        assert a == sorted(a)

    def test_cellular_mean_rate_in_ballpark(self):
        trace = cellular_trace(20.0, duration_ms=20_000, seed=1)
        mean_rate = len(trace) * OPPORTUNITY_BYTES / 20.0  # bytes/s
        assert mbps(20.0) / 6 < mean_rate < mbps(20.0) * 5

    def test_invalid_rates_rejected(self):
        with pytest.raises(TraceFormatError):
            constant_rate_trace(0.0)
        with pytest.raises(TraceFormatError):
            periodic_rate_trace(-1.0, 5.0)
        with pytest.raises(TraceFormatError):
            cellular_trace(0.0)
