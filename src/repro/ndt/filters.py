"""§3.1 flow filters.

"We attempt to remove flows from the dataset that we know were unlikely
to have experienced contention: application- or receiver-limited flows
and flows we infer to use cellular links.  [...] We categorized flows
as application-limited if the AppLimited field was greater than zero,
and similarly we categorized a flow as receiver-limited if the
RWndLimited field was greater than zero."

Filters use only fields observable in real NDT data (never the
synthetic ground truth), so the pipeline exercises exactly the
inference the paper performs.
"""

from __future__ import annotations

import enum

import numpy as np

from .schema import NdtRecord


class FlowCategory(enum.Enum):
    """§3.1 categorization of an NDT flow."""

    APP_LIMITED = "app_limited"
    RWND_LIMITED = "rwnd_limited"
    CELLULAR = "cellular"
    REMAINING = "remaining"


def is_app_limited(record: NdtRecord) -> bool:
    """AppLimited > 0, per §3.1."""
    return record.app_limited_us > 0


def is_rwnd_limited(record: NdtRecord) -> bool:
    """RWndLimited > 0, per §3.1."""
    return record.rwnd_limited_us > 0


def infer_cellular(record: NdtRecord,
                   variability_threshold: float = 0.25) -> bool:
    """Infer a cellular/satellite path.

    M-Lab infers access type from client network metadata; we use that
    tag when present and fall back to a throughput-variability
    heuristic (cellular links show large short-term rate variance even
    when saturated) -- the kind of inference §3.1 alludes to.
    """
    if record.access_type in ("cellular", "satellite"):
        return True
    series = record.throughput_series()
    # Judge the steady tail: the first quarter of any TCP test is slow
    # start and loss recovery, which looks wild on every access type.
    tail = series[len(series) // 4:]
    if len(tail) < 4:
        return False
    mean = tail.mean()
    if mean <= 0:
        return False
    # Coefficient of variation of short-term differences.
    cv = float(np.std(np.diff(tail))) / mean
    return cv > variability_threshold


def categorize(record: NdtRecord) -> FlowCategory:
    """Apply the §3.1 filters in the paper's order."""
    if is_app_limited(record):
        return FlowCategory.APP_LIMITED
    if is_rwnd_limited(record):
        return FlowCategory.RWND_LIMITED
    if infer_cellular(record):
        return FlowCategory.CELLULAR
    return FlowCategory.REMAINING
