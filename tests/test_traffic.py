"""Tests for the traffic generators."""

import pytest

from repro.cca import RenoCca
from repro.errors import ConfigError
from repro.sim import Simulator, dumbbell
from repro.traffic import (CROSS_TRAFFIC_IS_ELASTIC,
                           CROSS_TRAFFIC_REGISTRY, BackloggedFlow,
                           CbrSource, CloudGamingStream, IdleSource,
                           Phase, PoissonShortFlows, VideoStream,
                           WebBrowsingUser, make_cross_traffic)
from repro.units import mbps, ms, to_mbps


def make_path(sim, rate=20.0, rtt=40.0, **kw):
    return dumbbell(sim, mbps(rate), ms(rtt), **kw)


class TestBacklogged:
    def test_saturates_link(self):
        sim = Simulator()
        path = make_path(sim)
        flow = BackloggedFlow(sim, path, "bulk", RenoCca())
        flow.start()
        sim.run(until=10.0)
        assert to_mbps(flow.delivered_bytes / 10.0) > 15.0

    def test_stop_halts_traffic(self):
        sim = Simulator()
        path = make_path(sim)
        flow = BackloggedFlow(sim, path, "bulk", RenoCca())
        flow.start()
        sim.run(until=5.0)
        flow.stop()
        before = path.bottleneck.delivered_bytes
        sim.run(until=6.0)
        # Nothing new beyond what was already queued/in flight.
        after = path.bottleneck.delivered_bytes
        assert after - before < 100_000


class TestCbr:
    def test_holds_configured_rate(self):
        sim = Simulator()
        path = make_path(sim, rate=50.0)
        cbr = CbrSource(sim, path, "cbr", rate=mbps(10))
        cbr.start()
        sim.run(until=10.0)
        assert to_mbps(cbr.delivered_bytes / 10.0) == pytest.approx(
            10.0, rel=0.05)

    def test_does_not_react_to_congestion(self):
        # On an undersized link, CBR keeps sending; deliveries track
        # link capacity, not any backoff.
        sim = Simulator()
        path = make_path(sim, rate=5.0)
        cbr = CbrSource(sim, path, "cbr", rate=mbps(10))
        cbr.start()
        sim.run(until=10.0)
        sent_rate = cbr.sent_packets * cbr.packet_size / 10.0
        assert to_mbps(sent_rate) == pytest.approx(10.0, rel=0.05)
        assert to_mbps(cbr.delivered_bytes / 10.0) < 5.5

    def test_stop(self):
        sim = Simulator()
        path = make_path(sim)
        cbr = CbrSource(sim, path, "cbr", rate=mbps(1))
        cbr.start()
        sim.run(until=1.0)
        cbr.stop()
        sent = cbr.sent_packets
        sim.run(until=2.0)
        assert cbr.sent_packets == sent

    def test_invalid_rate(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            CbrSource(sim, make_path(sim), "x", rate=0)


class TestVideo:
    def test_reaches_top_bitrate_on_fast_link(self):
        sim = Simulator()
        path = make_path(sim, rate=100.0)
        video = VideoStream(sim, path, "video")
        video.start()
        sim.run(until=40.0)
        # Once the buffer is comfortable the top rung (16 Mbit/s) wins.
        late = video.stats.bitrate_history[-5:]
        assert max(late) * 8 / 1e6 == pytest.approx(16.0, rel=0.01)
        # No meaningful rebuffering on a 100 Mbit/s link.
        assert video.stats.stall_time < 0.5

    def test_demand_bounded_by_ladder(self):
        # Key §2.2 property: on a fast link, video uses only what its
        # top bitrate needs.
        sim = Simulator()
        path = make_path(sim, rate=200.0)
        video = VideoStream(sim, path, "video")
        video.start()
        sim.run(until=40.0)
        mean_rate = to_mbps(video.delivered_bytes / 40.0)
        assert mean_rate < 25.0  # well under the 200 Mbit/s link

    def test_downshifts_on_slow_link(self):
        sim = Simulator()
        path = make_path(sim, rate=3.0)
        video = VideoStream(sim, path, "video")
        video.start()
        sim.run(until=40.0)
        late = video.stats.bitrate_history[-5:]
        assert max(late) * 8 / 1e6 <= 3.0

    def test_buffer_capped(self):
        sim = Simulator()
        path = make_path(sim, rate=100.0)
        video = VideoStream(sim, path, "video", max_buffer=12.0)
        video.start()
        sim.run(until=30.0)
        assert video.buffer_seconds <= 12.0 + 1e-6

    def test_invalid_ladder(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            VideoStream(sim, make_path(sim), "v", ladder_mbps=(5.0, 1.0))


class TestPoisson:
    def test_flows_arrive_and_complete(self):
        sim = Simulator()
        path = make_path(sim, rate=50.0)
        src = PoissonShortFlows(sim, path, arrival_rate=20.0,
                                mean_size=30_000, seed=1)
        src.start()
        sim.run(until=10.0)
        assert len(src.records) > 100
        completed = src.completed_flows
        assert len(completed) > 0.8 * len(src.records)
        assert all(r.fct > 0 for r in completed)

    def test_offered_load_near_configured(self):
        sim = Simulator()
        path = make_path(sim, rate=100.0)
        src = PoissonShortFlows(sim, path, arrival_rate=30.0,
                                mean_size=50_000, seed=2)
        src.start()
        sim.run(until=20.0)
        assert src.offered_load() == pytest.approx(30.0 * 50_000,
                                                   rel=0.35)

    def test_stop_halts_arrivals(self):
        sim = Simulator()
        path = make_path(sim)
        src = PoissonShortFlows(sim, path, arrival_rate=50.0, seed=3)
        src.start()
        sim.run(until=2.0)
        src.stop()
        n = len(src.records)
        sim.run(until=4.0)
        assert len(src.records) == n

    def test_deterministic_given_seed(self):
        def arrivals(seed):
            sim = Simulator()
            path = make_path(sim)
            src = PoissonShortFlows(sim, path, arrival_rate=10.0,
                                    seed=seed)
            src.start()
            sim.run(until=5.0)
            return [(r.flow_id, r.size) for r in src.records]
        assert arrivals(7) == arrivals(7)
        assert arrivals(7) != arrivals(8)


class TestGaming:
    def test_stays_at_top_rate_on_clean_link(self):
        sim = Simulator()
        path = make_path(sim, rate=100.0, rtt=20.0)
        game = CloudGamingStream(sim, path, "game", rtt_hint=ms(20))
        game.start()
        sim.run(until=10.0)
        assert to_mbps(game.delivered_bytes / 10.0) > 20.0
        assert game.downgrades == 0

    def test_downgrades_under_queueing(self):
        sim = Simulator()
        # 10 Mbit/s link cannot carry the 30 Mbit/s top rate.
        path = make_path(sim, rate=10.0, rtt=20.0, buffer_multiplier=8.0)
        game = CloudGamingStream(sim, path, "game", rtt_hint=ms(20))
        game.start()
        sim.run(until=10.0)
        assert game.downgrades > 0
        assert game.current_rate < mbps(30)


class TestWeb:
    def test_pages_load(self):
        sim = Simulator()
        path = make_path(sim, rate=50.0)
        user = WebBrowsingUser(sim, path, think_time=1.0, seed=4)
        user.start()
        sim.run(until=30.0)
        assert user.pages_loaded > 3
        assert all(t > 0 for t in user.page_load_times)
        assert user.delivered_bytes > 0


class TestRegistry:
    def test_all_registered_types_start(self):
        for name in CROSS_TRAFFIC_REGISTRY:
            sim = Simulator()
            path = make_path(sim)
            src = make_cross_traffic(name, sim, path, f"x-{name}", seed=1)
            src.start()
            sim.run(until=1.0)

    def test_truth_labels_cover_registry(self):
        assert set(CROSS_TRAFFIC_IS_ELASTIC) == set(CROSS_TRAFFIC_REGISTRY)

    def test_unknown_name_rejected(self):
        sim = Simulator()
        with pytest.raises(ConfigError):
            make_cross_traffic("warpspeed", sim, make_path(sim), "x")

    def test_idle_source_never_sends(self):
        src = IdleSource()
        src.start()
        assert src.delivered_bytes == 0

    def test_phase_validation(self):
        with pytest.raises(ConfigError):
            Phase("reno", -1.0)
