"""Wire protocol for the experiment service: requests, jobs, states.

A :class:`JobRequest` is the unit of admission -- a JSON document
naming a job *kind* (campaign, pipeline, sweep, qa-fuzz, experiment)
plus that kind's parameters.  Requests round-trip through plain dicts,
and every request has a deterministic **fingerprint**: the store
fingerprint of its semantic payload (kind + params, minus
execution-only knobs like ``workers``).  The fingerprint is what makes
the service idempotent -- completed fingerprints are answered from the
artifact store, and identical in-flight fingerprints coalesce onto one
execution.

A :class:`Job` is the server-side record of one admitted request: its
lifecycle state, timing, result summary, and coalescing accounting.
Jobs serialize to JSON for every status/result endpoint; only the
*summary* travels over HTTP -- the full result payload stays in the
artifact store under the job's fingerprint.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Mapping

from ..errors import ConfigError
from ..store.fingerprint import canonicalize, fingerprint

#: Job parameters that do not change the result (the determinism
#: contract makes results worker-count invariant), excluded from the
#: request fingerprint so e.g. ``workers=1`` and ``workers=8``
#: submissions of the same config share one cache entry.
NONSEMANTIC_PARAMS = ("workers",)

#: Priority range; smaller is more urgent (ties break FIFO).
PRIORITY_MIN, PRIORITY_MAX = 0, 9
PRIORITY_DEFAULT = 5

#: Fingerprint namespace for serve jobs in the artifact store.
JOB_KIND = "serve-job"


class JobState:
    """Job lifecycle states (plain strings, JSON-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CANCELLED = "cancelled"

    #: States a job never leaves.
    TERMINAL = frozenset({DONE, FAILED, TIMEOUT, CANCELLED})


@dataclass(frozen=True)
class JobRequest:
    """One experiment request, as admitted over HTTP.

    Attributes:
        kind: job family ("campaign", "pipeline", "sweep", "qa-fuzz",
            "experiment", ...); the executor registry in
            :mod:`repro.serve.jobs` decides which kinds exist.
        params: kind-specific parameters (JSON object).
        priority: 0 (most urgent) .. 9; default 5.
        client: client identity for rate limiting and accounting.
    """

    kind: str
    params: Mapping = field(default_factory=dict)
    priority: int = PRIORITY_DEFAULT
    client: str = "anonymous"

    def __post_init__(self):
        if not isinstance(self.kind, str) or not self.kind:
            raise ConfigError(f"job kind must be a non-empty string: "
                              f"{self.kind!r}")
        if not isinstance(self.params, Mapping):
            raise ConfigError(
                f"job params must be an object: {type(self.params).__name__}")
        if (not isinstance(self.priority, int)
                or isinstance(self.priority, bool)
                or not PRIORITY_MIN <= self.priority <= PRIORITY_MAX):
            raise ConfigError(
                f"priority must be an integer in "
                f"[{PRIORITY_MIN}, {PRIORITY_MAX}]: {self.priority!r}")
        if (not isinstance(self.client, str) or not self.client
                or len(self.client) > 120):
            raise ConfigError(f"client must be a short non-empty string: "
                              f"{self.client!r}")
        # Fail at admission, not mid-execution: every param must have a
        # canonical form (this also rejects non-JSON payloads).
        canonicalize(dict(self.params))

    # -- serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, payload: Mapping) -> "JobRequest":
        """Parse a request document; :class:`ConfigError` on bad input."""
        if not isinstance(payload, Mapping):
            raise ConfigError(
                f"request body must be a JSON object: "
                f"{type(payload).__name__}")
        unknown = set(payload) - {"kind", "params", "priority", "client"}
        if unknown:
            raise ConfigError(
                f"unknown request fields: {', '.join(sorted(unknown))}")
        if "kind" not in payload:
            raise ConfigError("request needs a 'kind' field")
        return cls(kind=payload["kind"],
                   params=dict(payload.get("params", {})),
                   priority=payload.get("priority", PRIORITY_DEFAULT),
                   client=payload.get("client", "anonymous"))

    def to_dict(self) -> dict:
        return {"kind": self.kind, "params": dict(self.params),
                "priority": self.priority, "client": self.client}

    # -- identity --------------------------------------------------------

    def fingerprint_payload(self) -> dict:
        """The semantic payload the fingerprint hashes.

        Priority and client identity are delivery concerns, and
        :data:`NONSEMANTIC_PARAMS` cannot change results, so none of
        them participate -- two clients asking for the same experiment
        at different priorities share one cache entry and coalesce.
        """
        params = {k: v for k, v in self.params.items()
                  if k not in NONSEMANTIC_PARAMS}
        return {"kind": self.kind, "params": params}

    def fingerprint(self) -> str:
        """Deterministic identity of this request's *result*."""
        return fingerprint(self.fingerprint_payload(), kind=JOB_KIND)


_JOB_SEQ = itertools.count(1)


@dataclass
class Job:
    """Server-side record of one admitted request.

    Attributes:
        id: server-assigned job id (stable for the job's lifetime;
            coalesced submissions receive the primary job's id).
        request: the admitted request.
        key: the request fingerprint (artifact-store key of the result).
        state: one of :class:`JobState`.
        cached: True when the job was answered from the store without
            executing.
        waiters: identical submissions coalesced onto this execution
            (1 = just the original submitter).
        summary: JSON-able result summary (terminal successful jobs).
        version: bumped on every state change (event streaming).
    """

    request: JobRequest
    key: str
    id: str = ""
    state: str = JobState.QUEUED
    created: float = 0.0
    started: float = 0.0
    finished: float = 0.0
    cached: bool = False
    waiters: int = 1
    error: str = ""
    error_type: str = ""
    summary: dict | None = None
    version: int = 0
    cancel_requested: bool = False

    def __post_init__(self):
        if not self.id:
            self.id = f"job-{next(_JOB_SEQ):06d}-{self.key[:8]}"

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, state: str, now: float) -> None:
        """Move to ``state``, stamping timing and bumping the version."""
        self.state = state
        if state == JobState.RUNNING and not self.started:
            self.started = now
        if state in JobState.TERMINAL and not self.finished:
            self.finished = now
        self.version += 1

    def to_dict(self) -> dict:
        """The JSON status document every job endpoint returns."""
        out = {
            "id": self.id,
            "key": self.key,
            "kind": self.request.kind,
            "state": self.state,
            "priority": self.request.priority,
            "client": self.request.client,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "cached": self.cached,
            "waiters": self.waiters,
            "version": self.version,
        }
        if self.error:
            out["error"] = self.error
            out["error_type"] = self.error_type
        if self.terminal and self.summary is not None:
            out["summary"] = self.summary
        return out
