"""Centralized bandwidth allocation (the §2.1 hyperscaler mechanisms)."""

from .bwe import BweController, DemandNode, allocate, weighted_water_fill

__all__ = ["BweController", "DemandNode", "allocate",
           "weighted_water_fill"]
