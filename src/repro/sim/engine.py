"""Discrete-event simulation engine.

A minimal but fast event loop: callbacks are scheduled at absolute times
and executed in timestamp order (FIFO among equal timestamps).  All other
simulation components -- links, queues, transport endpoints, applications
-- are written against this engine.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from ..errors import SimulationError
from ..obs import invariants as _invariants
from ..obs.bus import BUS as _OBS, EventKind
from ..obs.metrics import REGISTRY as _METRICS


class Event:
    """Handle for a scheduled callback; supports cancellation.

    Events are stored in the heap as ``(time, seq, event)`` tuples so
    ordering is decided by C-level float/int comparison; ``seq`` is
    unique, so the Event object itself is never compared.
    """

    __slots__ = ("time", "callback", "cancelled")

    def __init__(self, time: float, callback: Callable[[], Any]):
        self.time = time
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running; safe to call repeatedly."""
        self.cancelled = True


class Simulator:
    """Event-driven simulation clock.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, lambda: out.append(sim.now))
    >>> sim.run(until=2.0)
    >>> out
    [1.0]
    """

    def __init__(self):
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        # Opt-in runtime auditing: REPRO_CHECK_INVARIANTS=1 attaches
        # strict trace-driven invariant checkers (idempotent, and a
        # no-op without the env var).
        _invariants.maybe_install_from_env()
        if _OBS.enabled:
            _OBS.emit(0.0, EventKind.SIM_START, "sim")

    # -- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay!r}")
        return self.schedule_at(self.now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], Any]) -> Event:
        """Run ``callback`` at absolute simulation time ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} (now is {self.now})")
        event = Event(time, callback)
        heapq.heappush(self._heap, (time, next(self._seq), event))
        return event

    # -- execution -------------------------------------------------------

    def step(self) -> bool:
        """Execute the next pending event.  Returns False if none remain."""
        while self._heap:
            _, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            event.callback()
            self._events_processed += 1
            return True
        return False

    def run(self, until: float | None = None) -> None:
        """Run until the event queue drains or the clock passes ``until``.

        When ``until`` is given the clock is left exactly at ``until`` so
        that post-run measurements have a well-defined end time.
        """
        if self._running:
            raise SimulationError("run() re-entered from a callback")
        self._running = True
        heap = self._heap
        pop = heapq.heappop
        processed_before = self._events_processed
        if _OBS.enabled:
            _OBS.emit(self.now, EventKind.SIM_RUN, "sim",
                      meta={"phase": "begin"})
        try:
            while heap:
                time, _, event = heap[0]
                if event.cancelled:
                    pop(heap)
                    continue
                if until is not None and time > until:
                    break
                pop(heap)
                self.now = time
                event.callback()
                self._events_processed += 1
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
            executed = self._events_processed - processed_before
            _METRICS.counter("sim.events_processed").inc(executed)
            _METRICS.counter("sim.runs").inc()
            _METRICS.gauge("sim.clock_s").set(self.now)
            if _OBS.enabled:
                _OBS.emit(self.now, EventKind.SIM_RUN, "sim",
                          value=float(executed), meta={"phase": "end"})

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of heap entries still queued.

        This counts *cancelled* events too: cancellation only marks the
        entry (removal from the middle of a heap is O(n)), and the mark
        is skipped lazily at dispatch time.  Use :attr:`pending_active`
        for the number of events that will actually run.
        """
        return len(self._heap)

    @property
    def pending_active(self) -> int:
        """Number of queued events that have not been cancelled.

        O(pending): walks the heap, so prefer :attr:`pending` in hot
        paths where the distinction does not matter.
        """
        return sum(1 for _, _, event in self._heap if not event.cancelled)
