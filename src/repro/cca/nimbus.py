"""Nimbus: elasticity-detecting congestion control (Goyal et al.,
SIGCOMM 2022 [54]).

Nimbus runs a delay-controlling rate-based CCA while superimposing
sinusoidal rate pulses.  From its own send rate S and delivery rate R
it estimates the cross-traffic rate ẑ = μ·S/R - S; the spectral energy
of ẑ at the pulse frequency is the *elasticity* of the cross traffic.
When mode switching is enabled, high elasticity flips Nimbus into a
TCP-competitive (Cubic-driven) mode; low elasticity returns it to
delay mode.

The paper reproduced here (§3.2) proposes running Nimbus **with mode
switching disabled but pulses maintained** as an active measurement
tool: the elasticity readings then report whether any cross traffic on
the path is contending for bandwidth.  Construct with
``mode_switching=False`` (the default here, unlike deployed Nimbus)
for that configuration; :class:`repro.core.probe.ElasticityProbe`
wraps the whole arrangement.

Deviations from the deployed system, also listed in DESIGN.md:
symmetric sinusoidal pulses (same spectral signature as Nimbus's
asymmetric pulse), and a proportional queue-delay controller for delay
mode.
"""

from __future__ import annotations

import math

from ..core.elasticity import (ElasticityEstimator, PulseGenerator,
                               cross_traffic_estimate)
from ..errors import ConfigError
from ..obs.bus import EventKind
from ..units import DEFAULT_MSS
from .base import AckSample, CongestionControl
from .cubic import CubicCca
from .filters import WindowedExtremum


class NimbusCca(CongestionControl):
    """Nimbus congestion control / elasticity probe.

    Args:
        capacity_hint: bottleneck capacity μ in bytes/second; None
            estimates μ as a windowed max of delivery-rate samples.
            (The elasticity metric is scale-invariant in μ, so the
            hint mainly improves the delay-mode rate controller.)
        pulse_freq: pulse frequency f_p (Hz).
        pulse_amplitude: pulse amplitude as a fraction of μ.
        delay_target: target standing queueing delay (seconds).
        mode_switching: enable the delay <-> TCP-competitive switch;
            False is the paper's measurement configuration.
        fixed_mode: with switching disabled, which base controller to
            run: "delay" (the measurement default; pair it with a
            raised ``min_rate_frac`` so it cannot be starved) or "tcp"
            (Cubic-competitive).
        elasticity_high / elasticity_low: switch thresholds.
        sample_interval: ẑ sampling cadence (seconds).
        initial_rate: pacing rate before any feedback (bytes/second).
        min_rate_frac: floor on the delay-mode rate as a fraction of μ.
            Deployed Nimbus uses a small floor (it switches modes when
            squeezed); a *measurement* probe with switching disabled
            should raise this (~0.25) so backlogged cross traffic
            cannot squeeze its pulses into invisibility.
    """

    name = "nimbus"

    #: queue-feedback gain for the delay-mode controller.
    QUEUE_GAIN = 0.5
    #: fixed normalization for the queue feedback (seconds); see
    #: _update_control for why the gain must not scale with the target.
    GAIN_REFERENCE_DELAY = 0.05
    #: minimum time between mode switches (seconds).
    MODE_DWELL = 2.0

    def __init__(self, mss: int = DEFAULT_MSS,
                 capacity_hint: float | None = None,
                 pulse_freq: float = 5.0, pulse_amplitude: float = 0.25,
                 delay_target: float | None = None,
                 mode_switching: bool = False, fixed_mode: str = "delay",
                 elasticity_high: float = 3.0, elasticity_low: float = 1.5,
                 sample_interval: float = 0.01, smoothing: float = 0.06,
                 initial_rate: float = 1_250_000.0,
                 min_rate_frac: float = 0.05):
        super().__init__(mss=mss)
        if delay_target is None:
            # The standing queue must absorb the worst-case drain of a
            # down-pulse (amplitude * period / pi seconds of queueing),
            # or the bottleneck idles and ẑ picks up the probe's own
            # pulse; default to twice that drain time.
            delay_target = min(
                2.0 * pulse_amplitude / (math.pi * pulse_freq), 0.05)
        if delay_target <= 0:
            raise ConfigError(f"delay_target must be positive: {delay_target}")
        if elasticity_low >= elasticity_high:
            raise ConfigError("need elasticity_low < elasticity_high")
        self.capacity_hint = capacity_hint
        self.pulses = PulseGenerator(pulse_freq, pulse_amplitude)
        self.delay_target = delay_target
        self.mode_switching = mode_switching
        self.elasticity_high = elasticity_high
        self.elasticity_low = elasticity_low
        self.sample_interval = sample_interval
        # Slow pulses need longer FFT windows (several periods) and a
        # comparison band that reaches below the pulse frequency.
        est_window = max(5.0, 10.0 / pulse_freq)
        est_band = (min(1.0, pulse_freq / 4.0), 12.0)
        self.estimator = ElasticityEstimator(
            pulse_freq=pulse_freq, sample_interval=sample_interval,
            window=est_window, band=est_band)

        self._mu_filter = WindowedExtremum(window=10.0, mode="max")
        self._smooth_bins = max(1, int(round(smoothing / sample_interval)))
        self._bin_idx = 0
        self._send_in_bin = 0
        self._recv_in_bin = 0
        # Full bin histories: ẑ compares R(t) against S(t - srtt),
        # because this instant's deliveries reflect what was sent one
        # RTT ago; contemporaneous S would alias the probe's own pulse
        # into ẑ whenever the RTT is comparable to the pulse period.
        self._send_bins: list[int] = []
        self._recv_bins: list[int] = []
        # The transport reports payload bytes; μ is a wire rate.  The
        # ~3.6% difference looks like phantom cross traffic in ẑ and,
        # worse, biases the delay controller's fair-share term low
        # enough to keep small-target paths just below saturation.
        self._wire_factor = (mss + 52) / mss

        self._base_rate = float(initial_rate)
        self._pacing_rate = float(initial_rate)
        self._cwnd = 20.0
        self._srtt: float | None = None
        self._min_rtt: float | None = None
        self._now = 0.0
        self._z_smoothed = 0.0

        self.min_rate_frac = min_rate_frac
        # Adaptive pulse envelope: on paths whose buffer cannot hold
        # the standing queue plus a full pulse swing, the probe's own
        # drops pulse-lock ẑ and fake elasticity.  The probe learns the
        # buffer depth from the peak queueing delay observed around
        # losses (overflow happens exactly when the queue equals the
        # buffer) and sizes its queue target and pulse amplitude to
        # fit inside it.  The estimate only ratchets upward, so there
        # is no oscillation; deeper-queue losses later (a competitor
        # filling a big buffer) relax the restriction back toward the
        # configured values.
        self._buffer_est: float | None = None
        self._last_loss = float("-inf")
        self._rtt_peak = WindowedExtremum(window=1.0, mode="max")
        self._base_delay_target = delay_target
        self._base_amplitude = pulse_amplitude
        self._pulse_freq = pulse_freq
        if fixed_mode not in ("delay", "tcp"):
            raise ConfigError(f"unknown fixed_mode {fixed_mode!r}")
        self.mode = "delay"
        self._mode_changed_at = 0.0
        self._tcp_inner: CubicCca | None = None
        #: (time, mode) history of mode switches, for analysis
        self.mode_log: list[tuple[float, str]] = []
        if not mode_switching and fixed_mode == "tcp":
            self.mode = "tcp"
            self._tcp_inner = CubicCca(mss=mss)
            self._trace(0.0, EventKind.MODE,
                        meta={"from": "delay", "to": "tcp", "fixed": True})

    # -- knobs -------------------------------------------------------------

    @property
    def cwnd(self) -> float:
        return self._cwnd

    @property
    def pacing_rate(self) -> float:
        return self._pacing_rate

    @property
    def mu(self) -> float:
        """Current capacity estimate μ̂ (bytes/second)."""
        if self.capacity_hint is not None:
            return self.capacity_hint
        filtered = self._mu_filter.value
        return filtered if filtered else self._base_rate

    @property
    def elasticity_readings(self):
        """All elasticity readings so far (the measurement output)."""
        return self.estimator.readings

    @property
    def latest_elasticity(self) -> float | None:
        readings = self.estimator.readings
        return readings[-1].elasticity if readings else None

    # -- event plumbing -------------------------------------------------------

    def on_packet_sent(self, now: float, bytes_sent: int,
                       app_limited: bool) -> None:
        self._advance_bins(now)
        self._send_in_bin += bytes_sent

    def on_ack(self, sample: AckSample) -> None:
        self._advance_bins(sample.now)
        self._recv_in_bin += sample.acked_bytes
        self._srtt = sample.srtt
        self._min_rtt = sample.min_rtt
        if sample.rtt is not None:
            self._rtt_peak.update(sample.now, sample.rtt)
        if (sample.delivery_rate is not None
                and not sample.delivery_rate_app_limited):
            self._mu_filter.update(sample.now, sample.delivery_rate)
        if self._tcp_inner is not None:
            self._tcp_inner.on_ack(sample)
        self._update_control(sample.now)

    def on_loss(self, now: float, lost_bytes: int) -> None:
        self._last_loss = now
        if self._tcp_inner is not None:
            self._tcp_inner.on_loss(now, lost_bytes)
        # Delay mode has no explicit rate cut on loss: losses inflate
        # the measured queueing delay, and the delay controller (which
        # recomputes the rate from scratch on every ACK) backs off
        # through that signal.  Losses do, however, teach us the
        # buffer depth: overflow happens when the queue equals the
        # buffer, so the recent peak queueing delay at loss time is a
        # buffer-depth sample.
        if self.mode != "delay":
            return
        peak_rtt = self._rtt_peak.value
        if peak_rtt is None or self._min_rtt is None:
            return
        queue_at_loss = max(0.0, peak_rtt - self._min_rtt)
        if queue_at_loss <= 1e-4:
            return
        if self._buffer_est is None or queue_at_loss > self._buffer_est:
            self._buffer_est = queue_at_loss
            self._retarget()

    @property
    def _amp_scale(self) -> float:
        """Delivered pulse amplitude as a fraction of the configured one."""
        if self._base_amplitude <= 0:
            return 1.0
        return self.pulses.amplitude_frac / self._base_amplitude

    def _retarget(self) -> None:
        """Fit the queue target and pulse amplitude into the buffer.

        Envelope budget: target ≈ 0.4 x buffer, pulse swing ≤ 0.25 x
        buffer each way, leaving ~0.1 x buffer of headroom so the
        up-lobe peak does not graze the tail-drop limit (grazing
        produces pulse-locked losses, which read as phantom
        elasticity).
        """
        if self._buffer_est is None:
            return
        self.delay_target = min(self._base_delay_target,
                                max(0.4 * self._buffer_est, 0.004))
        max_drain = 0.25 * self._buffer_est
        max_amp = max_drain * math.pi * self._pulse_freq
        self.pulses.amplitude_frac = min(self._base_amplitude,
                                         max(max_amp, 0.02))

    def on_rto(self, now: float) -> None:
        if self._tcp_inner is not None:
            self._tcp_inner.on_rto(now)
        self._base_rate = max(self._base_rate * 0.5,
                              self.min_rate_frac * self.mu)

    # -- rate sampling ----------------------------------------------------------

    def _advance_bins(self, now: float) -> None:
        """Close any ẑ sample bins that ended before ``now``."""
        self._now = now
        width = self.sample_interval
        target_bin = int(now / width)
        while self._bin_idx < target_bin:
            self._close_bin()

    def _mean_rate(self, bins: list[int], end: int) -> float:
        """Mean rate over the ``_smooth_bins`` bins ending at ``end``."""
        lo = max(0, end - self._smooth_bins)
        if end <= lo:
            return 0.0
        return sum(bins[lo:end]) / ((end - lo) * self.sample_interval)

    def _close_bin(self) -> None:
        self._send_bins.append(self._send_in_bin)
        self._recv_bins.append(self._recv_in_bin)
        self._send_in_bin = 0
        self._recv_in_bin = 0
        self._bin_idx += 1
        bin_end = self._bin_idx * self.sample_interval

        srtt = self._srtt if self._srtt is not None else 0.1
        lag_bins = int(round(srtt / self.sample_interval))
        n = len(self._send_bins)
        recv_rate = self._mean_rate(self._recv_bins, n) * self._wire_factor
        send_rate = (self._mean_rate(self._send_bins, n - lag_bins)
                     * self._wire_factor)
        z = cross_traffic_estimate(self.mu, send_rate, recv_rate)
        # Cross traffic cannot exceed the link: unclipped, transient
        # starvation of our ACK stream (R -> 0 in a smoothing window)
        # yields unphysical ẑ spikes whose broadband spectral noise
        # drowns genuine pulse responses.
        z = min(z, 1.5 * self.mu)
        # Light smoothing stabilizes the delay controller; the estimator
        # gets the raw sample to preserve spectral content.
        self._z_smoothed += 0.1 * (z - self._z_smoothed)
        # The significance floor tracks the *delivered* pulse drive: a
        # shrunken pulse elicits proportionally smaller responses, and
        # holding the floor at full scale would mute true detections.
        self.estimator.scale = self.mu * self._amp_scale
        reading = self.estimator.add_sample(bin_end, z)
        # Bins close lazily, so bin_end can trail the live clock; emit
        # at the clock (events must be non-decreasing in time) and keep
        # the bin boundary in meta.
        meta = {"bin_end": bin_end}
        if reading is not None:
            meta["elasticity"] = reading.elasticity
        self._trace(self._now, EventKind.PULSE, z, meta)
        if reading is not None and self.mode_switching:
            self._maybe_switch_mode(bin_end, reading.elasticity)

    # -- control law --------------------------------------------------------------

    def _update_control(self, now: float) -> None:
        mu = self.mu
        srtt = self._srtt if self._srtt is not None else 0.1
        if self.mode == "delay":
            queue_delay = 0.0
            if self._srtt is not None and self._min_rtt is not None:
                queue_delay = max(0.0, self._srtt - self._min_rtt)
            fair_share = max(0.0, mu - self._z_smoothed)
            # Stiffness is normalized by a FIXED reference delay, not
            # by the target: dividing by a small target makes the
            # feedback violent enough to self-oscillate at a few Hz --
            # squarely inside the elasticity band -- which reads as
            # phantom elastic cross traffic on idle paths.
            queue_term = (self.QUEUE_GAIN * mu
                          * (self.delay_target - queue_delay)
                          / self.GAIN_REFERENCE_DELAY)
            self._base_rate = min(max(fair_share + queue_term,
                                      self.min_rate_frac * mu), 1.2 * mu)
        else:
            assert self._tcp_inner is not None
            self._base_rate = self._tcp_inner.cwnd * self.mss / srtt

        rate = self._base_rate + self.pulses.offset(now, mu)
        self._pacing_rate = max(rate, self.min_rate_frac * mu)
        # The window caps rather than clocks transmission.
        self._cwnd = max(4.0, 2.0 * self._pacing_rate * srtt / self.mss)

    def _maybe_switch_mode(self, now: float, elasticity: float) -> None:
        if now - self._mode_changed_at < self.MODE_DWELL:
            return
        srtt = self._srtt if self._srtt is not None else 0.1
        if self.mode == "delay" and elasticity >= self.elasticity_high:
            self.mode = "tcp"
            self._mode_changed_at = now
            start_cwnd = max(4.0, self._base_rate * srtt / self.mss)
            self._tcp_inner = CubicCca(mss=self.mss,
                                       initial_cwnd=start_cwnd)
            self._tcp_inner.ssthresh = start_cwnd
            self.mode_log.append((now, "tcp"))
            self._trace(self._now, EventKind.MODE, elasticity,
                        {"from": "delay", "to": "tcp"})
        elif self.mode == "tcp" and elasticity <= self.elasticity_low:
            self.mode = "delay"
            self._mode_changed_at = now
            self._tcp_inner = None
            self.mode_log.append((now, "delay"))
            self._trace(self._now, EventKind.MODE, elasticity,
                        {"from": "tcp", "to": "delay"})
