"""Experiment E13: guided search vs random fuzzing, head to head.

The acceptance claim behind ``repro qa search`` is quantitative: at
equal budget and seed, coverage-guided search must explore more of
the scenario feature map than uniform random sampling and drive
detector-confidence minima at least as low.  This experiment runs
both arms -- the guided search of :mod:`repro.qa.search` and its
random control, sharing one fresh-sample stream so the comparison is
apples to apples -- and reports coverage, the confidence minima, and
the jitter axis's contribution (how many covered cells involve
endpoint timing jitter, the 2BRobust perturbation the detector must
survive).
"""

from __future__ import annotations

from .. import viz
from ..errors import ConfigError
from ..qa.search import run_random_baseline, run_search
from .runner import ExperimentResult, Stopwatch


def _jitter_cells(cells: dict) -> int:
    """Cells whose jitter component (field 6 of the id) is not "none"."""
    return sum(1 for cell_id in cells
               if cell_id.split("|")[5] != "none")


def run(budget: int = 300, seed: int = 0,
        workers: int | None = None) -> ExperimentResult:
    """Run guided search and the random baseline at equal budget.

    Both arms are pure functions of ``(seed, budget)``; ``workers``
    changes wall-clock time only.
    """
    if budget < 1:
        raise ConfigError(f"budget must be >= 1: {budget}")
    with Stopwatch() as watch:
        with Stopwatch() as guided_watch:
            report = run_search(budget, seed=seed, workers=workers)
        with Stopwatch() as random_watch:
            baseline = run_random_baseline(budget, seed=seed,
                                           workers=workers)

    guided = report.feature_map
    ratio = (guided.coverage / baseline.coverage
             if baseline.coverage else float("inf"))
    gmin = guided.min_confidence()
    rmin = baseline.min_confidence()
    rows = [
        {"arm": "guided", "cells": guided.coverage,
         "jitter_cells": _jitter_cells(guided.cells),
         "min_confidence": gmin,
         "failures": len(report.failures),
         "seconds": round(guided_watch.elapsed, 2)},
        {"arm": "random", "cells": baseline.coverage,
         "jitter_cells": _jitter_cells(baseline.cells),
         "min_confidence": rmin,
         "failures": sum(s["failures"] for s in baseline.cells.values()),
         "seconds": round(random_watch.elapsed, 2)},
    ]
    parts = [
        f"E13: coverage-guided search vs random fuzzing "
        f"(budget={budget}, seed={seed})",
        "",
        viz.table(
            [(r["arm"], r["cells"], r["jitter_cells"],
              f"{r['min_confidence']:.4f}"
              if r["min_confidence"] is not None else "n/a",
              r["failures"], f"{r['seconds']:.2f}")
             for r in rows],
            header=("arm", "cells", "jitter cells", "min confidence",
                    "failures", "seconds")),
        "",
        f"coverage ratio guided/random: {ratio:.2f}x; "
        f"{len(report.reproduced_failures)} of {len(report.failures)} "
        f"guided failures reproduced on the packet backend",
    ]
    metrics = {
        "budget": float(budget),
        "guided_cells": float(guided.coverage),
        "random_cells": float(baseline.coverage),
        "coverage_ratio": ratio,
        "guided_jitter_cells": float(_jitter_cells(guided.cells)),
        "random_jitter_cells": float(_jitter_cells(baseline.cells)),
        "guided_failures": float(len(report.failures)),
        "reproduced_failures": float(len(report.reproduced_failures)),
    }
    if gmin is not None:
        metrics["guided_min_confidence"] = gmin
    if rmin is not None:
        metrics["random_min_confidence"] = rmin
    return ExperimentResult(
        experiment="robustness",
        text="\n".join(parts),
        metrics=metrics,
        tables={"arms": rows},
        params={"budget": budget, "seed": seed, "workers": workers},
        elapsed_s=watch.elapsed,
    )
