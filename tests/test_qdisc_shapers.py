"""Unit tests for the token-bucket filter, policer, and HTB."""

import pytest

from repro.errors import ConfigError
from repro.qdisc import (DropTailQueue, HtbClass, HtbQueue, Policer,
                         TokenBucketFilter)
from repro.sim.packet import make_data
from repro.units import mbps


def pkt(flow="f", size=1500, user=""):
    return make_data(flow, seq=0, payload=size - 52, size=size,
                     user_id=user)


class TestTokenBucketFilter:
    def test_initial_burst_passes_immediately(self):
        tbf = TokenBucketFilter(rate=mbps(10), burst=3 * 1514)
        for _ in range(3):
            tbf.enqueue(pkt(size=1514), 0.0)
        assert tbf.dequeue(0.0) is not None
        assert tbf.dequeue(0.0) is not None
        # Third 1514B packet needs 3*1514 tokens total; bucket had
        # exactly that, so it passes too.
        assert tbf.dequeue(0.0) is not None

    def test_gates_when_tokens_exhausted(self):
        tbf = TokenBucketFilter(rate=mbps(10), burst=1514)
        tbf.enqueue(pkt(size=1514), 0.0)
        tbf.enqueue(pkt(size=1514), 0.0)
        assert tbf.dequeue(0.0) is not None
        assert tbf.dequeue(0.0) is None  # out of tokens
        assert len(tbf) == 1

    def test_tokens_refill_over_time(self):
        rate = mbps(10)
        tbf = TokenBucketFilter(rate=rate, burst=1514)
        tbf.enqueue(pkt(size=1514), 0.0)
        tbf.enqueue(pkt(size=1514), 0.0)
        tbf.dequeue(0.0)
        assert tbf.dequeue(0.0) is None
        wait = 1514 / rate
        assert tbf.dequeue(wait + 1e-9) is not None

    def test_next_ready_time_predicts_refill(self):
        rate = mbps(10)
        tbf = TokenBucketFilter(rate=rate, burst=1514)
        tbf.enqueue(pkt(size=1514), 0.0)
        tbf.enqueue(pkt(size=1514), 0.0)
        tbf.dequeue(0.0)
        tbf.dequeue(0.0)  # stashes the head
        ready = tbf.next_ready_time(0.0)
        assert ready == pytest.approx(1514 / rate)
        assert tbf.dequeue(ready) is not None

    def test_empty_tbf_has_no_ready_time(self):
        tbf = TokenBucketFilter(rate=mbps(10), burst=1514)
        assert tbf.next_ready_time(0.0) is None
        assert tbf.dequeue(0.0) is None

    def test_long_term_rate_is_enforced(self):
        rate = mbps(8)
        tbf = TokenBucketFilter(rate=rate, burst=10 * 1514)
        t, sent = 0.0, 0
        # Offer far more than the rate for 2 seconds.
        while t < 2.0:
            tbf.enqueue(pkt(size=1514), t)
            p = tbf.dequeue(t)
            if p is not None:
                sent += p.size
            t += 0.0005
        # burst + 2s at rate, with ~1 MTU slack.
        assert sent <= 10 * 1514 + 2.0 * rate + 1514

    def test_burst_must_hold_an_mtu(self):
        with pytest.raises(ConfigError):
            TokenBucketFilter(rate=mbps(1), burst=100)

    def test_peak_rate_must_exceed_rate(self):
        with pytest.raises(ConfigError):
            TokenBucketFilter(rate=mbps(10), burst=15140, peak_rate=mbps(5))

    def test_child_overflow_counted_as_drop(self):
        tbf = TokenBucketFilter(rate=mbps(10), burst=1514,
                                child=DropTailQueue(limit_packets=1))
        assert tbf.enqueue(pkt(), 0.0)
        assert not tbf.enqueue(pkt(), 0.0)
        assert tbf.drops == 1


class TestPolicer:
    def test_conforming_traffic_passes(self):
        pol = Policer(rate=mbps(10), burst=5 * 1514)
        assert pol.enqueue(pkt(size=1514), 0.0)
        assert pol.dequeue(0.0) is not None

    def test_excess_traffic_dropped_not_queued(self):
        pol = Policer(rate=mbps(10), burst=1514)
        assert pol.enqueue(pkt(size=1514), 0.0)
        assert not pol.enqueue(pkt(size=1514), 0.0)
        assert pol.drops == 1
        assert len(pol) == 1  # only the conforming packet

    def test_tokens_recover(self):
        rate = mbps(10)
        pol = Policer(rate=rate, burst=1514)
        pol.enqueue(pkt(size=1514), 0.0)
        assert not pol.enqueue(pkt(size=1514), 0.0)
        assert pol.enqueue(pkt(size=1514), 1514 / rate + 1e-9)

    def test_long_term_rate(self):
        rate = mbps(4)
        pol = Policer(rate=rate, burst=3 * 1514)
        passed, t = 0, 0.0
        while t < 1.0:
            if pol.enqueue(pkt(size=1514), t):
                passed += 1514
                pol.dequeue(t)
            t += 0.001
        assert passed <= 3 * 1514 + rate * 1.0 + 1514


class TestHtb:
    def test_each_class_gets_assured_rate(self):
        alice = HtbClass("alice", rate=mbps(5), ceil=mbps(10))
        bob = HtbClass("bob", rate=mbps(5), ceil=mbps(10))
        htb = HtbQueue([alice, bob])
        for _ in range(20):
            htb.enqueue(pkt("a1", user="alice"), 0.0)
            htb.enqueue(pkt("b1", user="bob"), 0.0)
        # Drain at t=0: both classes have full burst buckets, service
        # should alternate between them.
        users = []
        for _ in range(10):
            p = htb.dequeue(0.0)
            assert p is not None
            users.append(p.user_id)
        assert users.count("alice") == 5
        assert users.count("bob") == 5

    def test_borrowing_up_to_ceiling(self):
        alice = HtbClass("alice", rate=mbps(2), ceil=mbps(10),
                         burst=4 * 1514)
        bob = HtbClass("bob", rate=mbps(8), ceil=mbps(10), burst=4 * 1514)
        htb = HtbQueue([alice, bob])
        # Only alice has traffic: she may exceed her assured 2 Mbit/s by
        # borrowing, draining her ceil bucket.
        for _ in range(8):
            htb.enqueue(pkt("a", user="alice"), 0.0)
        served = 0
        while htb.dequeue(0.0) is not None:
            served += 1
        assert served >= 4  # burst-worth via assured + borrowed tokens

    def test_unknown_user_goes_to_default_class(self):
        only = HtbClass("default", rate=mbps(1), ceil=mbps(1))
        htb = HtbQueue([only])
        assert htb.enqueue(pkt("x", user="mystery"), 0.0)
        assert htb.dequeue(0.0) is not None

    def test_per_class_packet_limit(self):
        cls = HtbClass("c", rate=mbps(1), ceil=mbps(1))
        htb = HtbQueue([cls], limit_packets=2)
        assert htb.enqueue(pkt("f", user="c"), 0.0)
        assert htb.enqueue(pkt("f", user="c"), 0.0)
        assert not htb.enqueue(pkt("f", user="c"), 0.0)
        assert htb.drops == 1

    def test_invalid_class_config_rejected(self):
        with pytest.raises(ConfigError):
            HtbClass("bad", rate=mbps(10), ceil=mbps(5))
        with pytest.raises(ConfigError):
            HtbQueue([])

    def test_next_ready_time_when_tokens_exhausted(self):
        cls = HtbClass("c", rate=mbps(1), ceil=mbps(1), burst=1514)
        htb = HtbQueue([cls])
        htb.enqueue(pkt("f", user="c", size=1514), 0.0)
        htb.enqueue(pkt("f", user="c", size=1514), 0.0)
        assert htb.dequeue(0.0) is not None
        assert htb.dequeue(0.0) is None
        ready = htb.next_ready_time(0.0)
        assert ready is not None
        assert htb.dequeue(ready + 1e-9) is not None
