"""Smoke test for the E11 cellular-robustness experiment (reduced)."""

import pytest

from repro.experiments import cellular_robustness


@pytest.fixture(scope="module")
def result():
    return cellular_robustness.run(volatilities=(0.0, 0.1),
                                   duration=25.0)


def test_rows_cover_matrix(result):
    rows = result.tables["sweep"]
    assert len(rows) == 4  # 2 volatilities x {idle, contended}
    assert {r["contended"] for r in rows} == {True, False}


def test_reliable_regime_is_correct(result):
    # Both volatilities here are in the reliable band.
    assert result.metrics["correctness_low_volatility"] == 1.0
    assert result.metrics["n_high"] == 0.0


def test_contended_scores_exceed_idle(result):
    rows = result.tables["sweep"]
    idle = max(r["elasticity"] for r in rows if not r["contended"])
    contended = min(r["elasticity"] for r in rows if r["contended"])
    assert contended > idle
