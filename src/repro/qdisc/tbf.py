"""Token-bucket filter (TBF) shaper.

The shaping mechanism the paper's §5.2 singles out: a flow accrues
tokens at a fixed ``rate`` up to a ``burst`` ceiling and may spend them
arbitrarily fast, so a shaped flow's transmission is bursty -- the
source of the jitter contention the paper predicts will matter next.

The TBF wraps a child qdisc (DropTail by default): arrivals go through
the child's admission logic; departures are gated on token
availability.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigError
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..sim.packet import Packet
from .base import Qdisc
from .fifo import DropTailQueue


class TokenBucketFilter(Qdisc):
    """Shape departures to ``rate`` bytes/s with ``burst`` bytes of slack.

    Args:
        rate: long-term token fill rate (bytes/second).
        burst: bucket depth (bytes); must hold at least one MTU or the
            largest packet would starve forever.
        child: inner queue holding packets awaiting tokens.
        peak_rate: optional second bucket limiting how fast a burst can
            drain (classic TBF peakrate); None = line rate.
    """

    MTU = 1514

    def __init__(self, rate: float, burst: int,
                 child: Qdisc | None = None,
                 peak_rate: float | None = None):
        super().__init__()
        if rate <= 0:
            raise ConfigError(f"rate must be positive: {rate}")
        if burst < self.MTU:
            raise ConfigError(f"burst must hold at least one MTU: {burst}")
        if peak_rate is not None and peak_rate < rate:
            raise ConfigError("peak_rate must be >= rate")
        self.rate = rate
        self.burst = burst
        self.peak_rate = peak_rate
        self.child = child if child is not None else DropTailQueue(
            limit_packets=1000)
        self._tokens = float(burst)
        self._peak_tokens = float(self.MTU)
        self._last_update = 0.0
        #: head-of-line packet pulled from the child but awaiting tokens
        self._stash: Optional[Packet] = None

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_update)
        self._last_update = now
        self._tokens = min(float(self.burst),
                           self._tokens + elapsed * self.rate)
        if self.peak_rate is not None:
            self._peak_tokens = min(
                float(self.MTU), self._peak_tokens + elapsed * self.peak_rate)

    def _affordable(self, size: int) -> bool:
        return self._tokens >= size and (
            self.peak_rate is None or self._peak_tokens >= size)

    def enqueue(self, packet: Packet, now: float) -> bool:
        accepted = self.child.enqueue(packet, now)
        if accepted:
            self._record_enqueue(packet, now)
        else:
            # The child recorded its own drop; mirror the count here so
            # callers reading this qdisc's stats see the loss.
            self._record_drop(packet, now)
        return accepted

    def dequeue(self, now: float) -> Optional[Packet]:
        self._refill(now)
        head = self._stash
        if head is None:
            head = self.child.dequeue(now)
        else:
            self._stash = None
        if head is None:
            return None
        if not self._affordable(head.size):
            self._stash = head
            return None
        self._tokens -= head.size
        if self.peak_rate is not None:
            self._peak_tokens -= head.size
        self._record_dequeue(head, now)
        return head

    def __len__(self) -> int:
        return len(self.child) + (1 if self._stash is not None else 0)

    @property
    def byte_length(self) -> int:
        extra = self._stash.size if self._stash is not None else 0
        return self.child.byte_length + extra

    def next_ready_time(self, now: float) -> Optional[float]:
        if self._stash is None and not len(self.child):
            return None
        need = self._stash.size if self._stash is not None else self.MTU
        self._refill(now)
        deficit = max(0.0, need - self._tokens)
        wait = deficit / self.rate
        if self.peak_rate is not None:
            peak_deficit = max(0.0, need - self._peak_tokens)
            wait = max(wait, peak_deficit / self.peak_rate)
        # Floor the wait: float rounding can leave the bucket a hair
        # short of affordable, and a zero-delay retry would spin the
        # link's poll loop at sub-nanosecond timestamps forever.
        return now + max(wait, 1e-6)

    @property
    def tokens(self) -> float:
        """Current token level (bytes); for tests and introspection."""
        return self._tokens
