"""Runnable reproductions of the paper's figures and ablations.

==============  ===========================================================
``fig2``        E1: the §3.1 M-Lab NDT passive pipeline (Figure 2)
``fig3``        E2: the §3.2 elasticity proof of concept (Figure 3)
``fq_ablation`` E3: fair queueing eliminates CCA contention (§2.1)
``tbf_jitter``  E4: token-bucket shaping causes jitter contention (§5.2)
``subpacket``   E5: sub-packet-BDP starvation (§2.3, Chen et al.)
``fairness_matrix``  E6: pairwise CCA contention matrix (intro, Ware et al.)
``campaign_eval``    E7: the proposed wide-area measurement study
``access_link``      E8: offered load vs allocation on access links (§2.2)
``tslp_vs_elasticity``  E9: TSLP finds congestion, not contention (§4)
``bwe_isolation``    E10: BwE-style central allocation eliminates contention (§2.1)
``cellular_robustness``  E11: probe robustness on variable-rate links (§2.3)
``envelope``    E12: the detector's calibrated envelope on either backend
``robustness``  E13: coverage-guided search vs random fuzzing, head to head
``fig2_scale``  E15: Figure 2 fractions + bootstrap CIs vs population size
``medium_contention``  E16: the probe question on a CSMA/CA shared medium
==============  ===========================================================
"""

from . import (access_link, bwe_isolation, campaign_eval,
               cellular_robustness, envelope, fairness_matrix, fig2,
               fig2_scale, fig3, fq_ablation, medium_contention,
               robustness, subpacket, tbf_jitter, tslp_vs_elasticity)
from .runner import ExperimentResult, Stopwatch, sweep

#: Experiment registry for the CLI.
EXPERIMENTS = {
    "fig2": fig2.run,
    "fig3": fig3.run,
    "fq_ablation": fq_ablation.run,
    "tbf_jitter": tbf_jitter.run,
    "subpacket": subpacket.run,
    "fairness_matrix": fairness_matrix.run,
    "campaign_eval": campaign_eval.run,
    "access_link": access_link.run,
    "tslp_vs_elasticity": tslp_vs_elasticity.run,
    "bwe_isolation": bwe_isolation.run,
    "cellular_robustness": cellular_robustness.run,
    "envelope": envelope.run,
    "robustness": robustness.run,
    "fig2_scale": fig2_scale.run,
    "medium_contention": medium_contention.run,
}

__all__ = ["EXPERIMENTS", "ExperimentResult", "Stopwatch", "sweep",
           "fig2", "fig3", "fq_ablation", "tbf_jitter", "subpacket",
           "fairness_matrix", "campaign_eval", "access_link",
           "tslp_vs_elasticity", "bwe_isolation",
           "cellular_robustness", "envelope", "robustness",
           "fig2_scale", "medium_contention"]
