"""The cluster coordinator: shard, dispatch, steal, merge.

One coordinator process drives N ``repro serve`` nodes:

* **Sharding** -- a run is decomposed into :class:`ClusterTask`s, each
  a serve job (kind + params) plus the store keys of the artifacts it
  will produce.  Task identity is the serve request fingerprint, so
  two tasks with equal semantics are *the same task* -- duplicates
  collapse at submission (here) and coalesce at admission (on the
  node), and replayed results merge idempotently by content address.
* **Placement** -- rendezvous (highest-random-weight) hashing of the
  task fingerprint over the live node set: placement is stable under
  membership churn (a node joining or dying only moves the tasks it
  owns), with bounded in-flight dispatch per node so every node's
  queue stays fed without flooding.
* **Work stealing** -- a task in flight longer than ``steal_after_s``
  gets a replica on another live node; first completion wins, and the
  loser's results (same content addresses) merge harmlessly.
* **Fault handling** -- transport failures mark a node down with
  exponential backoff (see :mod:`repro.cluster.membership`) and its
  tasks re-dispatch elsewhere; *execution* failures retry on other
  nodes up to ``max_attempts`` before the task is quarantined (the
  caller then recomputes locally or reports it).

The loop is single-threaded and clock-injectable: every decision
happens in one poll tick, which makes the failure semantics testable
without real time or real sockets.
"""

from __future__ import annotations

import hashlib
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..errors import ClusterError, ConfigError
from ..obs.metrics import REGISTRY as _METRICS
from ..serve.client import ServeClient, ServeError
from ..serve.protocol import JobRequest
from ..store.artifacts import ArtifactStore
from .journal import ClusterJournal
from .membership import (CONNECT_TIMEOUT_S, READ_TIMEOUT_S, Membership,
                         Node, parse_cluster)
from .merge import pull_objects

#: Campaign params forwarded into ``paths`` shard tasks.
_CAMPAIGN_PARAM_KEYS = ("n_paths", "seed", "duration", "fq_fraction",
                        "backend", "medium")


@dataclass(frozen=True)
class ClusterTask:
    """One unit of cluster dispatch.

    Attributes:
        key: the serve request fingerprint -- the task's identity for
            duplicate suppression, journaling, and the store key of
            its result object.
        kind / params: the serve job to submit.
        artifact_keys: store keys the executing node will hold on
            completion, pulled into the local store at merge time.
        label: human-readable name for logs and journal rows.
    """

    key: str
    kind: str
    params: Mapping
    artifact_keys: tuple[str, ...] = ()
    label: str = ""


def task_for(kind: str, params: Mapping,
             artifact_keys: Sequence[str] = (),
             label: str = "") -> ClusterTask:
    """Build a task whose key is the serve request fingerprint."""
    request = JobRequest(kind=kind, params=dict(params))
    return ClusterTask(key=request.fingerprint(), kind=kind,
                       params=dict(params),
                       artifact_keys=tuple(artifact_keys), label=label)


@dataclass
class TaskRecord:
    """The coordinator's ledger entry for one task."""

    task: ClusterTask
    status: str = "pending"   # pending|running|done|failed|resumed
    node: str = ""            # node that completed (or last failed) it
    failures: int = 0         # terminal execution failures so far
    dispatches: int = 0
    error: str = ""
    summary: dict | None = None

    @property
    def finished(self) -> bool:
        return self.status in ("done", "failed", "resumed")


@dataclass
class _Attempt:
    node: Node
    job_id: str
    submitted_at: float
    stolen: bool = False


class Coordinator:
    """Dispatch a task set across a cluster and merge results back.

    Args:
        membership: the probed node list.
        store: local artifact store results merge into (required --
            the store *is* the result channel).
        max_inflight_per_node: dispatch bound per live node.
        poll_s: loop tick (status polls per in-flight attempt).
        steal_after_s: age at which an in-flight task earns a replica
            on another node.
        max_attempts: execution failures before a task is quarantined.
        dead_grace_s: how long the loop tolerates zero live nodes
            (with unfinished work) before raising :class:`ClusterError`.
        journal: optional :class:`ClusterJournal` for resumable runs.
        clock / sleep: injectable time sources for tests.
        client_factory: ``fn(node) -> ServeClient`` (injectable).
    """

    def __init__(self, membership: Membership, store: ArtifactStore,
                 max_inflight_per_node: int = 2, poll_s: float = 0.05,
                 steal_after_s: float = 20.0, max_attempts: int = 3,
                 dead_grace_s: float = 120.0,
                 journal: ClusterJournal | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 sleep: Callable[[float], None] = time.sleep,
                 client_factory: Callable[[Node], ServeClient] | None = None):
        if store is None:
            raise ConfigError("the coordinator needs a local store "
                              "(results merge into it)")
        if max_inflight_per_node < 1:
            raise ConfigError(f"max_inflight_per_node must be >= 1: "
                              f"{max_inflight_per_node}")
        self.membership = membership
        self.store = store
        self.max_inflight_per_node = max_inflight_per_node
        self.poll_s = poll_s
        self.steal_after_s = steal_after_s
        self.max_attempts = max_attempts
        self.dead_grace_s = dead_grace_s
        self.journal = journal
        self.clock = clock
        self.sleep = sleep
        self._client_factory = (client_factory if client_factory
                                else self._default_client)
        self._clients: dict[str, ServeClient] = {}
        self._metrics = _METRICS.scoped("cluster")

    @staticmethod
    def _default_client(node: Node) -> ServeClient:
        return ServeClient(node.host, node.port,
                           timeout=READ_TIMEOUT_S,
                           connect_timeout=CONNECT_TIMEOUT_S,
                           client_id="cluster-coordinator")

    def _client(self, node: Node) -> ServeClient:
        client = self._clients.get(node.name)
        if client is None:
            client = self._client_factory(node)
            self._clients[node.name] = client
        return client

    # -- placement -------------------------------------------------------

    @staticmethod
    def _rendezvous(key: str, nodes: Sequence[Node]) -> list[Node]:
        """Nodes in highest-random-weight order for ``key``."""
        def score(node: Node) -> str:
            return hashlib.sha256(
                f"{key}|{node.name}".encode()).hexdigest()
        return sorted(nodes, key=score, reverse=True)

    def _node_load(self, inflight: Mapping[str, list[_Attempt]]
                   ) -> dict[str, int]:
        load: dict[str, int] = {}
        for attempts in inflight.values():
            for attempt in attempts:
                load[attempt.node.name] = \
                    load.get(attempt.node.name, 0) + 1
        return load

    # -- the run loop ----------------------------------------------------

    def run(self, tasks: Sequence[ClusterTask],
            progress: Callable[[int, int], None] | None = None
            ) -> dict[str, TaskRecord]:
        """Run ``tasks`` to completion; returns the ledger by key.

        Duplicate keys are suppressed up front (one record serves all
        copies).  Raises :class:`ClusterError` only when no node is
        live for ``dead_grace_s`` with work outstanding; individual
        task failures are recorded, not raised -- callers fall back to
        local execution for quarantined tasks.
        """
        records: dict[str, TaskRecord] = {}
        order: list[str] = []
        for task in tasks:
            if task.key not in records:
                records[task.key] = TaskRecord(task=task)
                order.append(task.key)
            else:
                self._metrics.counter("tasks_deduplicated").inc()
        total = len(order)
        if self.journal is not None:
            resumable = self.journal.resumable_done(
                {k: records[k].task.artifact_keys for k in order})
            for key in resumable:
                records[key].status = "resumed"
                self._metrics.counter("tasks_resumed").inc()
        pending: deque[str] = deque(
            k for k in order if records[k].status == "pending")
        inflight: dict[str, list[_Attempt]] = {}
        last_alive = self.clock()

        def done_count() -> int:
            return sum(1 for k in order if records[k].finished)

        while pending or inflight:
            self.membership.tick()
            live = self.membership.live()
            now = self.clock()
            if live:
                last_alive = now
            elif now - last_alive > self.dead_grace_s:
                raise ClusterError(
                    f"no live cluster node for {self.dead_grace_s:g}s "
                    f"with {len(pending) + len(inflight)} tasks "
                    "outstanding")
            before = done_count()
            self._dispatch(pending, inflight, records, live)
            self._poll(pending, inflight, records)
            self._steal(inflight, records)
            if progress is not None and done_count() != before:
                progress(done_count(), total)
            if pending or inflight:
                self.sleep(self.poll_s)
        if self.journal is not None:
            self.journal.finish(
                clean=all(records[k].status != "failed" for k in order))
        return records

    # -- dispatch --------------------------------------------------------

    def _capacity(self, live: Sequence[Node],
                  inflight: Mapping[str, list[_Attempt]],
                  exclude: str | None = None) -> list[Node]:
        load = self._node_load(inflight)
        now = self.clock()
        return [n for n in live
                if n.name != exclude and now >= n.busy_until
                and load.get(n.name, 0) < self.max_inflight_per_node]

    def _dispatch(self, pending: deque, inflight: dict,
                  records: dict[str, TaskRecord],
                  live: Sequence[Node]) -> None:
        stalled: list[str] = []
        while pending:
            candidates = self._capacity(live, inflight)
            if not candidates:
                break
            key = pending.popleft()
            record = records[key]
            attempt = self._submit(record,
                                   self._rendezvous(key, candidates)[0])
            if attempt is None:
                if record.finished:
                    continue  # cached hit or permanent rejection
                stalled.append(key)  # node refused; retry next tick
                continue
            record.status = "running"
            inflight[key] = [attempt]
        pending.extend(stalled)

    def _submit(self, record: TaskRecord,
                node: Node) -> _Attempt | None:
        """Submit one task to one node.

        Returns the attempt, or None when no attempt is in flight --
        either the node refused (transient: the task stays pending) or
        the response settled the task (cached hit, permanent 4xx).
        """
        task = record.task
        client = self._client(node)
        try:
            doc = client.submit(task.kind, dict(task.params), priority=3)
        except ServeError as exc:
            if exc.status == 0:
                self.membership.mark_down(node)
                self._metrics.counter("dispatch_transport_errors").inc()
            elif exc.status == 429:
                node.busy_until = self.clock() + (exc.retry_after_s
                                                  or 1.0)
            elif exc.status == 503:
                node.draining = True
            else:
                # 400-class: the request itself is invalid on every
                # node; quarantine instead of retrying forever.
                record.status = "failed"
                record.error = str(exc)
                record.node = node.name
                self._record_journal(record)
                self._metrics.counter("tasks_failed").inc()
            return None
        record.dispatches += 1
        self._metrics.counter(
            f"node.{node.metric_name}.dispatched").inc()
        if doc.get("disposition") == "cached":
            if self._merge(record, node, doc):
                return None
            # The node answered from cache but could not serve the
            # artifacts (crashed between answer and pull): leave the
            # task pending for another node.
            return None
        return _Attempt(node=node, job_id=doc["id"],
                        submitted_at=self.clock())

    # -- polling ---------------------------------------------------------

    def _poll(self, pending: deque, inflight: dict,
              records: dict[str, TaskRecord]) -> None:
        for key in list(inflight):
            record = records[key]
            attempts = inflight[key]
            for attempt in list(attempts):
                try:
                    doc = self._client(attempt.node).status(
                        attempt.job_id)
                except ServeError as exc:
                    if exc.status == 0:
                        self.membership.mark_down(attempt.node)
                    # 404 == the node restarted and lost its job table
                    # (its journal will resume the work, but we cannot
                    # wait on a job id that no longer exists).
                    attempts.remove(attempt)
                    continue
                state = doc.get("state")
                if state == "done":
                    if self._merge(record, attempt.node, doc):
                        self._cancel_siblings(attempts, attempt)
                        del inflight[key]
                        break
                    attempts.remove(attempt)
                elif state in ("failed", "timeout", "cancelled"):
                    record.failures += 1
                    record.error = doc.get("error", state)
                    record.node = attempt.node.name
                    self._metrics.counter(
                        f"node.{attempt.node.metric_name}.failed").inc()
                    attempts.remove(attempt)
            if key not in inflight:
                continue
            if not attempts:
                del inflight[key]
                if record.failures >= self.max_attempts:
                    record.status = "failed"
                    self._record_journal(record)
                    self._metrics.counter("tasks_failed").inc()
                else:
                    record.status = "pending"
                    pending.append(key)

    def _cancel_siblings(self, attempts: list[_Attempt],
                         winner: _Attempt) -> None:
        """Best-effort cancel of a completed task's other replicas
        (queued replicas die; running ones finish and their results
        merge idempotently by content address)."""
        for attempt in attempts:
            if attempt is winner:
                continue
            try:
                self._client(attempt.node).cancel(attempt.job_id)
            except ServeError:
                pass

    # -- stealing --------------------------------------------------------

    def _steal(self, inflight: dict,
               records: dict[str, TaskRecord]) -> None:
        now = self.clock()
        live = self.membership.live()
        for key, attempts in inflight.items():
            if len(attempts) != 1:
                continue
            primary = attempts[0]
            if now - primary.submitted_at < self.steal_after_s:
                continue
            candidates = self._capacity(live, inflight,
                                        exclude=primary.node.name)
            if not candidates:
                continue
            node = self._rendezvous(key, candidates)[0]
            replica = self._submit(records[key], node)
            if replica is not None:
                replica.stolen = True
                attempts.append(replica)
                self._metrics.counter(
                    f"node.{node.metric_name}.stolen").inc()
            elif records[key].finished or not attempts:
                # _submit settled the task (cached merge) mid-steal.
                continue

    # -- merge -----------------------------------------------------------

    def _merge(self, record: TaskRecord, node: Node, doc: dict) -> bool:
        """Pull a completed task's artifacts; True when merged."""
        task = record.task
        client = self._client(node)
        try:
            pull_objects(client, self.store,
                         (task.key, *task.artifact_keys),
                         kind="cluster-object",
                         label=task.label or task.kind)
        except (ServeError, ClusterError):
            # Node died (or lied) between completion and fetch; the
            # caller's loop re-dispatches the task elsewhere.
            self.membership.mark_down(node)
            self._metrics.counter("merge_errors").inc()
            return False
        record.status = "done"
        record.node = node.name
        record.summary = doc.get("summary")
        self._record_journal(record)
        self._metrics.counter(
            f"node.{node.metric_name}.completed").inc()
        return True

    def _record_journal(self, record: TaskRecord) -> None:
        if self.journal is not None:
            self.journal.record(record.task.key, record.status,
                                node=record.node, error=record.error)


# ---------------------------------------------------------------------------
# High-level entry points
# ---------------------------------------------------------------------------


def shard_indices(indices: Sequence[int], shard_count: int
                  ) -> list[list[int]]:
    """Split ``indices`` into ``shard_count`` near-equal contiguous
    chunks (deterministic; no empty shards)."""
    shard_count = max(1, min(shard_count, len(indices)))
    base, extra = divmod(len(indices), shard_count)
    shards, cursor = [], 0
    for i in range(shard_count):
        size = base + (1 if i < extra else 0)
        shards.append(list(indices[cursor:cursor + size]))
        cursor += size
    return shards


def run_clustered_campaign(params: Mapping, cluster,
                           store: ArtifactStore | None = None,
                           workers: int | None = None,
                           shards_per_node: int = 4,
                           resume: bool = False,
                           progress: Callable[[int, int], None] | None
                           = None,
                           coordinator: Coordinator | None = None):
    """Run a campaign across a serve cluster; returns
    :class:`~repro.core.campaign.CampaignResult`.

    The flow: build the campaign locally, fingerprint every path,
    shard the paths *not already in the local store* into ``paths``
    tasks (about ``shards_per_node`` per node, for stealing
    granularity), dispatch them, pull each completed shard's per-path
    objects back by content address, and finally assemble through
    :meth:`Campaign.run` against the local store -- every merged path
    is a cache hit, every quarantined or lost path recomputes locally,
    and the result is byte-identical to a serial run by construction.

    Args:
        params: campaign params as a serve ``campaign`` job takes them
            (``n_paths``, ``seed``, ``duration``, ``fq_fraction``,
            ``backend``).
        cluster: node spec for :func:`parse_cluster`, or an existing
            :class:`Membership` when ``coordinator`` is None.
        store: local merge target (default: the default store).
        workers: local workers for the final assembly (and any
            fallback recomputation).
        resume: forwarded to the final :meth:`Campaign.run` (honor a
            prior manifest's quarantine list).
        coordinator: injectable pre-built coordinator (tests).
    """
    from ..serve.jobs import campaign_from_params
    from ..store import active_store
    from ..store.fingerprint import fingerprint

    if store is None:
        store = active_store() or ArtifactStore()
    campaign = campaign_from_params(dict(params))
    path_keys = [campaign.path_key(s) for s in campaign.specs]
    todo = [i for i, key in enumerate(path_keys) if key not in store]
    _METRICS.scoped("cluster").counter("campaign_paths_local").inc(
        len(path_keys) - len(todo))
    if todo:
        if coordinator is None:
            membership = (cluster if isinstance(cluster, Membership)
                          else Membership(parse_cluster(cluster)))
            coordinator = Coordinator(
                membership, store,
                journal=ClusterJournal(store, campaign.fingerprint()))
        base = {k: params[k] for k in _CAMPAIGN_PARAM_KEYS
                if k in params}
        shard_count = shards_per_node * len(
            coordinator.membership.nodes)
        tasks = []
        for chunk in shard_indices(todo, shard_count):
            tasks.append(task_for(
                "paths", {**base, "indices": chunk},
                artifact_keys=tuple(path_keys[i] for i in chunk),
                label=f"paths[{chunk[0]}..{chunk[-1]}] "
                      f"{fingerprint(chunk, kind='shard')[:8]}"))
        records = coordinator.run(tasks, progress=progress)
        lost = sum(1 for r in records.values() if r.status == "failed")
        if lost:
            _METRICS.scoped("cluster").counter(
                "shards_fallback_local").inc(lost)
    # Final assembly: merged paths are store hits, anything missing
    # (failed shards, dead nodes) recomputes locally.
    return campaign.run(store=store, workers=workers, resume=resume,
                        progress=progress)


def run_clustered_fig2(n_flows: int, cluster,
                       seed: int = 0, model=None,
                       chunk_size: int | None = None,
                       min_relative_shift: float = 0.25,
                       store: ArtifactStore | None = None,
                       workers: int | None = None,
                       resume: bool = False,
                       progress: Callable[[int, int], None] | None = None,
                       coordinator: Coordinator | None = None):
    """Run a streamed §3.1 fig2 pipeline across a serve cluster;
    returns :class:`~repro.ndt.pipeline.Fig2Result`.

    The flow mirrors :func:`run_clustered_campaign`: cut the
    population into :class:`~repro.ndt.stream.ShardSpec`\\ s locally,
    dispatch the shards *not already in the local store* as
    ``fig2-shard`` tasks (each node regenerates its slice from the
    spec -- per-flow seeding means only a few integers travel), pull
    each completed partial back by content address, then assemble
    through :func:`~repro.ndt.stream.run_pipeline_streaming` against
    the local store -- merged shards are cache hits, quarantined or
    lost shards recompute locally, and the result is byte-identical to
    a serial run by construction.

    Args:
        n_flows: population size.
        cluster: node spec for :func:`parse_cluster`, or an existing
            :class:`Membership` when ``coordinator`` is None.
        seed: population seed.
        model: must be None or the default
            :class:`~repro.ndt.synth.PopulationModel` -- custom models
            do not travel over the cluster wire.
        chunk_size: flows per shard (default
            :data:`~repro.ndt.synth.DEFAULT_CHUNK_SIZE`).
        store: local merge target (default: the default store).
        workers: local workers for the final assembly (and any
            fallback recomputation).
        resume: forwarded to the final assembly's scheduler manifest.
        coordinator: injectable pre-built coordinator (tests).
    """
    from ..ndt.stream import (run_pipeline_streaming, shard_specs,
                              stream_run_key)
    from ..ndt.synth import DEFAULT_CHUNK_SIZE, PopulationModel
    from ..store import active_store

    if store is None:
        store = active_store() or ArtifactStore()
    if model is not None and model != PopulationModel():
        raise ConfigError(
            "clustered fig2 runs support only the default "
            "PopulationModel (custom models do not travel over the "
            "wire); run locally instead")
    if chunk_size is None:
        chunk_size = DEFAULT_CHUNK_SIZE
    specs = shard_specs(n_flows, seed=seed, chunk_size=chunk_size,
                        min_relative_shift=min_relative_shift)
    keys = [spec.key() for spec in specs]
    todo = [i for i, key in enumerate(keys) if key not in store]
    _METRICS.scoped("cluster").counter("fig2_shards_local").inc(
        len(keys) - len(todo))
    if todo:
        if coordinator is None:
            membership = (cluster if isinstance(cluster, Membership)
                          else Membership(parse_cluster(cluster)))
            coordinator = Coordinator(
                membership, store,
                journal=ClusterJournal(store, stream_run_key(specs)))
        tasks = [task_for(
            "fig2-shard",
            {"seed": seed, "start": specs[i].start,
             "count": specs[i].count,
             "min_relative_shift": min_relative_shift},
            artifact_keys=(keys[i],), label=specs[i].shard_id)
            for i in todo]
        records = coordinator.run(tasks, progress=progress)
        lost = sum(1 for r in records.values() if r.status == "failed")
        if lost:
            _METRICS.scoped("cluster").counter(
                "shards_fallback_local").inc(lost)
    # Final assembly: merged shards are store hits, anything missing
    # (failed shards, dead nodes) recomputes locally.
    return run_pipeline_streaming(
        n_flows, seed=seed, chunk_size=chunk_size,
        min_relative_shift=min_relative_shift, workers=workers,
        store=store, resume=resume, progress=progress)


def cluster_evaluator(coordinator: Coordinator, store: ArtifactStore):
    """A batch evaluator for :func:`repro.qa.search.run_search` that
    farms candidate scenarios out as ``qa-eval`` jobs.

    Returns ``evaluate(scenarios) -> [(outcome, findings), ...]`` in
    submission order.  Duplicate scenarios inside one batch share one
    task (fingerprint dedup); quarantined or unmergeable evaluations
    fall back to local execution, so the search never loses a
    candidate -- and because the remote payload is the exact tuple the
    local evaluator produces, the report stays byte-identical.
    """
    def evaluate(scenarios):
        from ..qa.search import _run_search_scenario
        tasks = [task_for("qa-eval", {"scenario": s.to_dict()},
                          label=s.label()) for s in scenarios]
        records = coordinator.run(tasks)
        results = []
        for scenario, task in zip(scenarios, tasks):
            record = records[task.key]
            entry = (store.get(task.key)
                     if record.status in ("done", "resumed") else None)
            if isinstance(entry, dict) and "payload" in entry:
                outcome, findings = entry["payload"]
                results.append((outcome, tuple(findings)))
            else:
                results.append(_run_search_scenario(scenario))
        return results
    return evaluate


def run_clustered_search(budget: int, cluster, seed: int = 0,
                         threshold: float = 2.0,
                         store: ArtifactStore | None = None,
                         qdisc_thresholds: Mapping[str, float] | None
                         = None,
                         progress: Callable[[int, int], None] | None
                         = None,
                         coordinator: Coordinator | None = None):
    """Run a coverage-guided search with clustered evaluation.

    Generation stays local and sequential (that is the determinism
    contract); only candidate evaluation fans out.  Returns the same
    :class:`~repro.qa.search.SearchReport` a serial run produces.
    """
    from ..qa.search import run_search

    if store is None:
        from ..store import active_store
        store = active_store() or ArtifactStore()
    if coordinator is None:
        membership = (cluster if isinstance(cluster, Membership)
                      else Membership(parse_cluster(cluster)))
        coordinator = Coordinator(membership, store)
    return run_search(budget, seed=seed, threshold=threshold,
                      qdisc_thresholds=qdisc_thresholds,
                      evaluate=cluster_evaluator(coordinator, store),
                      progress=progress)
