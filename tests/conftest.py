"""Shared fixtures.

Every test runs with ``REPRO_STORE`` pointed at a per-test temp
directory so the suite can exercise the result store (including the
CLI's cache-by-default path) without ever touching the user's real
``~/.cache/repro``, and with cache/fault-injection env vars cleared so
ambient state never leaks between tests.
"""

import pytest


@pytest.fixture(autouse=True)
def _isolated_store_env(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_STORE", str(tmp_path / "repro-store"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    monkeypatch.delenv("REPRO_FAULT_RATE", raising=False)
    monkeypatch.delenv("REPRO_QA_FAULT", raising=False)
