"""Experiment E3: fair queueing eliminates CCA contention (§2.1).

"a universal deployment of fair queueing (for example) would entirely
eliminate the role of CCA dynamics in determining bandwidth
allocations."

We race CCA pairs on a shared bottleneck under DropTail vs per-flow DRR
fair queueing and report Jain's index and harm.  Expected shape: under
DropTail, aggressive pairings (BBR vs loss-based) are skewed; under FQ,
every pairing lands at Jain ~= 1.0 regardless of CCA.
"""

from __future__ import annotations

from .. import viz
from ..analysis.fairness import harm, jain_index
from ..cca import make_cca
from ..qdisc.fifo import DropTailQueue
from ..qdisc.fq import DrrFairQueue
from ..sim.engine import Simulator
from ..sim.network import default_buffer_packets, dumbbell
from ..tcp.endpoint import Connection
from ..units import mbps, ms, to_mbps
from .runner import ExperimentResult, Stopwatch

DEFAULT_PAIRS = (("reno", "bbr"), ("cubic", "bbr"), ("reno", "cubic"),
                 ("vegas", "cubic"))


def _race(pair: tuple[str, str], qdisc_name: str, rate_mbps: float,
          rtt_ms: float, duration: float,
          buffer_multiplier: float) -> dict:
    sim = Simulator()
    rate, rtt = mbps(rate_mbps), ms(rtt_ms)
    buffer_packets = default_buffer_packets(rate, rtt, buffer_multiplier)
    if qdisc_name == "fq":
        qdisc = DrrFairQueue(limit_packets=buffer_packets)
    else:
        qdisc = DropTailQueue(limit_packets=buffer_packets)
    path = dumbbell(sim, rate, rtt, qdisc=qdisc)
    conns = [Connection(sim, path, f"{name}-{i}", make_cca(name))
             for i, name in enumerate(pair)]
    for c in conns:
        c.sender.set_infinite_backlog()
    sim.run(until=duration)
    rates = [c.receiver.received_bytes / duration for c in conns]
    # Solo reference for harm: half the link (the fair share).
    fair_share = rate / 2.0
    return {
        "pair": f"{pair[0]} vs {pair[1]}",
        "qdisc": qdisc_name,
        "rate_a_mbps": round(to_mbps(rates[0]), 2),
        "rate_b_mbps": round(to_mbps(rates[1]), 2),
        "jain": round(jain_index(rates), 4),
        "harm_to_a": round(harm(fair_share, rates[0]), 4),
        "harm_to_b": round(harm(fair_share, rates[1]), 4),
        "utilization": round(sum(rates) / rate, 4),
    }


def run(pairs: tuple = DEFAULT_PAIRS, rate_mbps: float = 40.0,
        rtt_ms: float = 40.0, duration: float = 30.0,
        buffer_multiplier: float = 1.0) -> ExperimentResult:
    """Race each pair under DropTail and FQ.

    ``buffer_multiplier`` defaults to 1 BDP: the regime where BBR's
    advantage over loss-based CCAs is most pronounced (in deep buffers
    loss-based flows out-buffer BBR's 2xBDP inflight cap -- Ware et
    al. [2], reproduced in E6).
    """
    with Stopwatch() as watch:
        rows = [
            _race(pair, qdisc_name, rate_mbps, rtt_ms, duration,
                  buffer_multiplier)
            for pair in pairs
            for qdisc_name in ("droptail", "fq")
        ]

    droptail_jain = [r["jain"] for r in rows if r["qdisc"] == "droptail"]
    fq_jain = [r["jain"] for r in rows if r["qdisc"] == "fq"]

    parts = [
        f"E3: CCA pairs on a {rate_mbps:.0f} Mbit/s, {rtt_ms:.0f} ms "
        f"bottleneck ({buffer_multiplier:.0f}x BDP buffer), "
        f"DropTail vs per-flow FQ",
        "",
        viz.table(
            [(r["pair"], r["qdisc"], r["rate_a_mbps"], r["rate_b_mbps"],
              r["jain"], r["utilization"]) for r in rows],
            header=("pair", "qdisc", "A Mbit/s", "B Mbit/s", "Jain",
                    "util")),
        "",
        f"worst Jain under DropTail: {min(droptail_jain):.3f}",
        f"worst Jain under FQ:       {min(fq_jain):.3f}",
    ]
    metrics = {
        "min_jain_droptail": min(droptail_jain),
        "min_jain_fq": min(fq_jain),
        "mean_jain_droptail": sum(droptail_jain) / len(droptail_jain),
        "mean_jain_fq": sum(fq_jain) / len(fq_jain),
    }
    return ExperimentResult(
        experiment="fq_ablation",
        text="\n".join(parts),
        metrics=metrics,
        tables={"races": rows},
        params={"rate_mbps": rate_mbps, "rtt_ms": rtt_ms,
                "duration": duration,
                "buffer_multiplier": buffer_multiplier},
        elapsed_s=watch.elapsed,
    )
