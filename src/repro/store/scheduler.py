"""Resumable, fault-tolerant task scheduling over the artifact store.

The scheduler sits between a task list (campaign paths, sweep points)
and the process pool:

1. **Consult the store.**  Each task carries a config fingerprint; a
   task whose result is already stored is never dispatched (a cache
   hit).
2. **Dispatch the rest fault-tolerantly.**  Misses run under a
   :class:`repro.runtime.FaultPolicy` -- per-task retry with backoff
   and timeout -- so one bad task quarantines instead of killing the
   run.
3. **Checkpoint each completion.**  The moment a task finishes, its
   result is written to the store and the checkpoint manifest is
   flushed (both atomically).  A crash or Ctrl-C loses at most the
   in-flight tasks.
4. **Resume.**  Re-running the same config resumes from the manifest:
   completed tasks are cache hits, quarantined tasks are skipped (with
   ``resume=True``) or retried afresh (``resume=False``), and only the
   unfinished remainder executes.

Results are deterministic: cached and computed paths return identical
values, so a resumed run's output is byte-identical to an
uninterrupted one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..errors import ConfigError
from ..obs.metrics import REGISTRY as _METRICS
from ..runtime import FaultPolicy, ParallelExecutor, TaskOutcome
from .artifacts import ArtifactStore
from .atomic import atomic_write_json

_MANIFEST_VERSION = 1


@dataclass
class SchedulerReport:
    """Outcome of one scheduled run.

    Attributes:
        results: task results in submission order; ``None`` where the
            task failed (see ``failed``).
        failed: quarantined tasks (retries exhausted, or skipped as
            known-failed on resume).
        hits: tasks served from the store.
        computed: tasks executed this run.
        resumed: tasks skipped because the resumed manifest had
            already quarantined them.
    """

    results: list = field(default_factory=list)
    failed: list[TaskOutcome] = field(default_factory=list)
    hits: int = 0
    computed: int = 0
    resumed: int = 0

    @property
    def ok(self) -> bool:
        return not self.failed


class ResumableScheduler:
    """Checkpointing task scheduler over an :class:`ArtifactStore`.

    Args:
        store: the artifact store holding per-task results.
        run_key: fingerprint of the *whole* run's config; names the
            checkpoint manifest.
        resume: when True, a prior manifest for ``run_key`` is loaded
            and its quarantined tasks are skipped instead of retried.
        kind: store entry kind for results written by this scheduler.
    """

    def __init__(self, store: ArtifactStore, run_key: str,
                 resume: bool = False, kind: str = "task"):
        self.store = store
        self.run_key = run_key
        self.kind = kind
        self.manifest_path = store.checkpoint_path(run_key)
        self._manifest = self._fresh_manifest()
        if resume:
            self._load_manifest()

    # -- manifest --------------------------------------------------------

    def _fresh_manifest(self) -> dict:
        return {"version": _MANIFEST_VERSION, "run_key": self.run_key,
                "status": "running", "total": 0,
                "done": {}, "failed": {}, "updated": 0.0}

    def _load_manifest(self) -> None:
        try:
            import json
            with open(self.manifest_path) as f:
                manifest = json.load(f)
            if (manifest.get("version") != _MANIFEST_VERSION
                    or manifest.get("run_key") != self.run_key):
                return  # stale or foreign manifest: start fresh
        except (OSError, ValueError):
            return
        manifest["status"] = "running"
        self._manifest = manifest

    def _flush_manifest(self) -> None:
        self._manifest["updated"] = time.time()
        atomic_write_json(self.manifest_path, self._manifest, indent=None)

    @property
    def manifest(self) -> dict:
        """The live checkpoint manifest (read-only use)."""
        return self._manifest

    # -- execution -------------------------------------------------------

    def run(self, fn: Callable, items: Iterable, keys: Sequence[str],
            labels: Sequence[str] | None = None,
            workers: int | None = None, chunk_size: int | None = None,
            policy: FaultPolicy | None = None,
            progress=None) -> SchedulerReport:
        """Run ``fn`` over ``items``, consulting and filling the store.

        Args:
            fn: pure task function of one item.
            items: the tasks.
            keys: one config fingerprint per item (also the pool task
                label, so fault injection is deterministic per config).
            labels: optional human-readable names recorded in the
                manifest (default: the keys).
            workers / chunk_size: pool parameters; checkpoint
                granularity is one chunk, so the default chunk size
                for scheduled runs is 1.
            policy: fault policy for computed tasks.
            progress: optional ``fn(done, total)`` callback counting
                hits and completions.
        """
        items = list(items)
        keys = [str(k) for k in keys]
        if len(keys) != len(items):
            raise ConfigError(
                f"keys/items length mismatch: {len(keys)} != {len(items)}")
        if len(set(keys)) != len(keys):
            raise ConfigError("task keys must be unique within a run")
        labels = ([str(lab) for lab in labels]
                  if labels is not None else list(keys))
        report = SchedulerReport(results=[None] * len(items))
        manifest = self._manifest
        manifest["total"] = len(items)
        total = len(items)
        done_count = 0

        def tick():
            if progress is not None:
                progress(done_count, total)

        pending: list[tuple[int, str, object]] = []
        for i, (item, key) in enumerate(zip(items, keys)):
            if key in manifest["failed"]:
                # Quarantined by the manifest we resumed from.
                entry = manifest["failed"][key]
                report.failed.append(TaskOutcome(
                    index=i, label=labels[i], ok=False,
                    attempts=int(entry.get("attempts", 0)),
                    error=entry.get("error", "quarantined by manifest"),
                    error_type=entry.get("error_type", "Quarantined")))
                report.resumed += 1
                done_count += 1
                tick()
                continue
            sentinel = object()
            cached = self.store.get(key, sentinel)
            if cached is not sentinel:
                report.results[i] = cached
                report.hits += 1
                manifest["done"][key] = True
                done_count += 1
                tick()
            else:
                pending.append((i, key, item))
        self._flush_manifest()

        if pending:
            pending_indices = [i for i, _, _ in pending]
            pending_keys = [k for _, k, _ in pending]
            pending_items = [it for _, _, it in pending]
            executor = ParallelExecutor(
                workers=workers,
                chunk_size=chunk_size if chunk_size is not None else 1)
            try:
                with executor:
                    for outcome in executor.imap_tasks(
                            fn, pending_items, policy=policy,
                            labels=pending_keys):
                        i = pending_indices[outcome.index]
                        key = pending_keys[outcome.index]
                        if outcome.ok:
                            self.store.put(key, outcome.value,
                                           kind=self.kind,
                                           label=labels[i])
                            report.results[i] = outcome.value
                            report.computed += 1
                            manifest["done"][key] = True
                        else:
                            report.failed.append(TaskOutcome(
                                index=i, label=labels[i], ok=False,
                                attempts=outcome.attempts,
                                error=outcome.error,
                                error_type=outcome.error_type))
                            _METRICS.counter("store.quarantined").inc()
                            manifest["failed"][key] = {
                                "label": labels[i],
                                "error": outcome.error,
                                "error_type": outcome.error_type,
                                "attempts": outcome.attempts,
                            }
                        done_count += 1
                        tick()
                        self._flush_manifest()
            finally:
                interrupted = done_count < total
                manifest["status"] = ("interrupted" if interrupted
                                      else "complete"
                                      if not manifest["failed"]
                                      else "complete_with_failures")
                self._flush_manifest()
        else:
            manifest["status"] = ("complete" if not manifest["failed"]
                                  else "complete_with_failures")
            self._flush_manifest()

        report.failed.sort(key=lambda o: o.index)
        return report
