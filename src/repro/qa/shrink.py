"""Delta-debugging shrinker for failing scenarios.

Given a scenario and the oracle it violates, greedily apply
simplifying transformations -- drop flows, remove cross traffic,
halve the duration, swap in the plainest qdisc, and so on -- keeping
each candidate only if the oracle still applies *and* still fails.
The result is the minimal repro that goes into ``tests/corpus/``.

Greedy one-pass-per-round shrinking is sound here because every
transformation strictly simplifies the scenario (there are no cycles),
and it converges in a handful of rounds; ``max_runs`` bounds the total
simulator invocations regardless.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Iterator

from .oracles import Oracle, Runner
from .scenario import Scenario

#: Duration floors: flow dynamics need a couple of seconds; the probe
#: needs warmup (6 s) plus at least one analysis window (5 s).
_FLOW_DURATION_FLOOR = 2.0
_PROBE_DURATION_FLOOR = 12.0


@dataclass
class ShrinkResult:
    """The minimized scenario plus bookkeeping about the search."""

    scenario: Scenario
    runs: int
    steps: list[str]


def _candidates(scenario: Scenario) -> Iterator[tuple[str, Scenario]]:
    """Yield (description, simplified-scenario) candidates, most
    aggressive first."""
    if len(scenario.flows) > 1:
        for i in range(len(scenario.flows)):
            kept = scenario.flows[:i] + scenario.flows[i + 1:]
            yield (f"drop flow {i} ({scenario.flows[i].cca})",
                   dataclasses.replace(scenario, flows=kept))
    if scenario.cross_traffic != "none" and scenario.family != "probe":
        yield ("remove cross traffic",
               dataclasses.replace(scenario, cross_traffic="none"))
    if scenario.timing_jitter != 0.0:
        yield ("remove timing jitter",
               dataclasses.replace(scenario, timing_jitter=0.0))
    if scenario.medium != "queue":
        yield ("replace shared medium with queue",
               dataclasses.replace(scenario, medium="queue"))
    floor = (_PROBE_DURATION_FLOOR if scenario.family == "probe"
             else _FLOW_DURATION_FLOOR)
    if scenario.duration > floor:
        shorter = max(floor, scenario.duration / 2.0)
        yield (f"halve duration to {shorter:g}s",
               dataclasses.replace(scenario, duration=shorter))
    if scenario.qdisc != "droptail":
        yield ("simplify qdisc to droptail",
               dataclasses.replace(scenario, qdisc="droptail"))
    if scenario.buffer_multiplier != 1.0:
        yield ("reset buffer multiplier to 1.0",
               dataclasses.replace(scenario, buffer_multiplier=1.0))
    if scenario.rate_mbps > 4.0:
        slower = max(4.0, scenario.rate_mbps / 2.0)
        yield (f"halve link rate to {slower:g} Mbps",
               dataclasses.replace(scenario, rate_mbps=slower))
    for i, flow in enumerate(scenario.flows):
        if flow.cca != "reno":
            simpler = (scenario.flows[:i]
                       + (dataclasses.replace(flow, cca="reno",
                                              ecn=False),)
                       + scenario.flows[i + 1:])
            yield (f"simplify flow {i} ({flow.cca} -> reno)",
                   dataclasses.replace(scenario, flows=simpler))
        if flow.start != 0.0:
            aligned = (scenario.flows[:i]
                       + (dataclasses.replace(flow, start=0.0),)
                       + scenario.flows[i + 1:])
            yield (f"start flow {i} at t=0",
                   dataclasses.replace(scenario, flows=aligned))


def _still_fails(scenario: Scenario, oracle: Oracle,
                 runner: Runner) -> bool:
    if not oracle.applies(scenario):
        return False
    try:
        outcome = runner(scenario)
    except Exception:
        # A candidate that crashes the simulator is a *different*
        # failure; keep shrinking the one we were asked about.
        return False
    return bool(oracle.check(scenario, outcome, runner))


def shrink(scenario: Scenario, oracle: Oracle, runner: Runner,
           max_runs: int = 80,
           progress: Callable[[str], None] | None = None) -> ShrinkResult:
    """Minimize ``scenario`` while ``oracle`` keeps failing on it.

    Args:
        scenario: a scenario known to fail ``oracle``.
        oracle: the oracle whose failure must be preserved.
        runner: executes candidate scenarios (``run_scenario``).
        max_runs: bound on simulator invocations during the search.
        progress: called with a description of each accepted step.
    """
    current = scenario
    runs = 0
    steps: list[str] = []
    improved = True
    while improved and runs < max_runs:
        improved = False
        for description, candidate in _candidates(current):
            if runs >= max_runs:
                break
            runs += 1
            if _still_fails(candidate, oracle, runner):
                current = candidate
                steps.append(description)
                if progress is not None:
                    progress(description)
                improved = True
                break
    return ShrinkResult(scenario=current, runs=runs, steps=steps)
