"""CI smoke for the result store: cache hits, resume, fault recovery.

Run directly (no pytest needed)::

    PYTHONPATH=src python benchmarks/cache_smoke.py

Asserts, against a throwaway store root:

1. A small campaign run twice re-executes **nothing** the second time
   (>= 90 % cache hits required by ISSUE 3; this proves 100 %), with
   the hit/miss/task accounting read from the obs metrics registry.
2. A run under ``REPRO_FAULT_RATE`` recovers every injected fault via
   retries and converges to the byte-identical golden result.
3. An interrupted campaign resumes, re-executing only the unfinished
   paths.
"""

import os
import pickle
import sys
import tempfile

N_PATHS = 8
SEED = 5
DURATION = 6.0
FAULT_RATE = "0.25"


def fresh_campaign():
    from repro.core.campaign import Campaign
    return Campaign(n_paths=N_PATHS, seed=SEED, duration=DURATION)


def check(label, condition, detail=""):
    status = "ok" if condition else "FAIL"
    print(f"  [{status}] {label}{': ' + detail if detail else ''}")
    if not condition:
        raise SystemExit(f"cache smoke failed: {label} ({detail})")


def main() -> int:
    os.environ["REPRO_STORE"] = tempfile.mkdtemp(prefix="repro-ci-store-")
    os.environ.pop("REPRO_CACHE", None)
    os.environ.pop("REPRO_FAULT_RATE", None)

    from repro.obs.metrics import REGISTRY
    from repro.runtime import FaultPolicy
    from repro.store import ArtifactStore

    def counter(name):
        return REGISTRY.counter(name).value

    print(f"campaign: n_paths={N_PATHS} seed={SEED} duration={DURATION}")

    print("golden run (no store)")
    golden = fresh_campaign().run(workers=2, store=None)
    golden_bytes = [pickle.dumps(r) for r in golden.results]

    print("cold run (populates store)")
    store = ArtifactStore()
    REGISTRY.reset()
    first = fresh_campaign().run(workers=2, store=store)
    check("cold run computed every path",
          counter("store.hits") == 0 and counter("pool.tasks") == N_PATHS,
          f"hits={counter('store.hits')} tasks={counter('pool.tasks')}")
    check("cold run matches golden",
          [pickle.dumps(r) for r in first.results] == golden_bytes)

    print("warm run (must be pure cache)")
    REGISTRY.reset()
    second = fresh_campaign().run(workers=2, store=store)
    hits, tasks = counter("store.hits"), counter("pool.tasks")
    check("zero re-executions", tasks == 0, f"pool.tasks={tasks}")
    check(">= 90% cache hits", hits >= 0.9 * N_PATHS,
          f"{hits}/{N_PATHS}")
    check("warm run matches golden",
          [pickle.dumps(r) for r in second.results] == golden_bytes)

    print(f"fault-injected run (REPRO_FAULT_RATE={FAULT_RATE})")
    os.environ["REPRO_FAULT_RATE"] = FAULT_RATE
    REGISTRY.reset()
    faulted = fresh_campaign().run(
        workers=2, store=ArtifactStore(tempfile.mkdtemp(
            prefix="repro-ci-faulted-")),
        policy=FaultPolicy(retries=10, backoff_s=0.0))
    injected = counter("pool.injected_faults")
    retries = counter("pool.retries")
    check("faults were injected", injected > 0, f"injected={injected}")
    check("no path permanently failed", not faulted.failed,
          f"failed={len(faulted.failed)} retries={retries}")
    check("faulted run converges to golden result",
          [pickle.dumps(r) for r in faulted.results] == golden_bytes)
    os.environ.pop("REPRO_FAULT_RATE")

    print("interrupted run resumes from checkpoints")

    class StopAfter:
        def __init__(self, n):
            self.n = n

        def __call__(self, done, total):
            if done >= self.n:
                raise KeyboardInterrupt

    partial_store = ArtifactStore(tempfile.mkdtemp(
        prefix="repro-ci-resume-"))
    try:
        fresh_campaign().run(workers=1, store=partial_store,
                             progress=StopAfter(3))
        raise SystemExit("interrupt did not propagate")
    except KeyboardInterrupt:
        pass
    checkpointed = partial_store.stat()["entries"]
    check("interrupt left checkpoints", 0 < checkpointed < N_PATHS,
          f"{checkpointed}/{N_PATHS}")
    REGISTRY.reset()
    resumed = fresh_campaign().run(workers=2, store=partial_store,
                                   resume=True)
    check("resume re-executed only the remainder",
          counter("pool.tasks") == N_PATHS - checkpointed,
          f"tasks={counter('pool.tasks')} expected={N_PATHS - checkpointed}")
    check("resumed run matches golden",
          [pickle.dumps(r) for r in resumed.results] == golden_bytes)

    print("cache smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
