"""Elasticity estimation -- the paper's proposed measurement primitive.

Nimbus (Goyal et al., SIGCOMM 2022 [54]) detects whether cross traffic
is *elastic* -- i.e. adjusts its rate in response to short-term changes
in available bandwidth -- by (1) modulating its own sending rate with
sinusoidal pulses at a known frequency ``f_p``, (2) estimating the
cross-traffic rate ``z(t)`` from its own send and receive rates, and
(3) measuring how much energy ``z(t)`` carries at ``f_p``: elastic
cross traffic reacts to the pulses (its ACK clock slows when the probe
pulses up), imprinting the pulse frequency onto ``z``; inelastic cross
traffic does not.

This module implements the signal-processing half, independent of any
transport so it can also run offline over recorded rate series:

* :func:`cross_traffic_estimate` -- ẑ = max(0, μ·S/R - S).
* :class:`PulseGenerator` -- the rate modulation waveform.
* :class:`ElasticityEstimator` -- streaming FFT-based estimator.
* :func:`elasticity_series` -- offline sliding-window analysis.

The elasticity metric here is a peak-to-background ratio: the amplitude
of ``z``'s spectrum at the pulse frequency divided by the median
amplitude in the surrounding band.  It is scale-invariant, so errors in
the capacity estimate μ (which rescale ẑ) do not move it -- the
property that makes the technique usable as a *measurement tool* on
paths with unknown capacity.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError, ConfigError


@functools.lru_cache(maxsize=64)
def _hann_window(n: int) -> np.ndarray:
    """Cached Hann window (recomputing cosines per update is the
    dominant non-FFT cost of the streaming estimator).  Treat as
    read-only."""
    return np.hanning(n)


@functools.lru_cache(maxsize=64)
def _rfft_freqs(n: int, sample_interval: float) -> np.ndarray:
    """Cached rFFT frequency grid.  Treat as read-only."""
    return np.fft.rfftfreq(n, d=sample_interval)


def cross_traffic_estimate(mu: float, send_rate: float,
                           recv_rate: float) -> float:
    """Nimbus cross-traffic rate estimate ẑ = max(0, μ·S/R - S).

    Rationale: with a busy FIFO bottleneck of capacity μ, a flow
    sending at S receives service R ≈ μ · S / (S + z), so
    z ≈ μ·S/R - S.

    Args:
        mu: bottleneck capacity estimate (bytes/second).
        send_rate: the probe's send rate S (bytes/second).
        recv_rate: the probe's delivery rate R (bytes/second).
    """
    if recv_rate <= 0 or send_rate <= 0:
        return 0.0
    return max(0.0, mu * send_rate / recv_rate - send_rate)


class PulseGenerator:
    """Sinusoidal rate pulses at frequency ``frequency``.

    The offset added to the base rate at time ``t`` is
    ``amplitude_frac * mu * sin(2*pi*frequency*t)`` -- zero-mean, so
    pulsing does not change the probe's average rate.

    (Nimbus uses an asymmetric half-sine pulse to bound queue build-up;
    a symmetric sine has the same spectral signature at ``f_p`` and
    simplifies mean-rate reasoning.  DESIGN.md lists this as a
    documented deviation.)
    """

    def __init__(self, frequency: float = 5.0, amplitude_frac: float = 0.25):
        if frequency <= 0:
            raise ConfigError(f"frequency must be positive: {frequency}")
        if not 0 < amplitude_frac < 1:
            raise ConfigError(
                f"amplitude_frac must be in (0, 1): {amplitude_frac}")
        self.frequency = frequency
        self.amplitude_frac = amplitude_frac

    def offset(self, t: float, mu: float) -> float:
        """Rate offset (bytes/second) to add at time ``t``."""
        return (self.amplitude_frac * mu
                * math.sin(2.0 * math.pi * self.frequency * t))


@dataclass(frozen=True)
class ElasticityReading:
    """One elasticity measurement.

    Attributes:
        time: when the window ended.
        elasticity: peak-to-background ratio at the pulse frequency
            (dimensionless; ~1 for inelastic, >> 1 for elastic).
        peak_amplitude: raw |Z(f_p)| (bytes/second).
        background_amplitude: median |Z(f)| over the comparison band.
        mean_cross_rate: mean of ẑ over the window (bytes/second).
    """

    time: float
    elasticity: float
    peak_amplitude: float
    background_amplitude: float
    mean_cross_rate: float


def _spectrum_elasticity_batch(windows: np.ndarray, sample_interval: float,
                               pulse_freq: float,
                               band: tuple[float, float],
                               significance_floor: float = 0.0
                               ) -> tuple[np.ndarray, np.ndarray,
                                          np.ndarray]:
    """Vectorized elasticity over a batch of ẑ windows.

    ``windows`` has shape ``(m, n)`` -- one FFT window per row; the
    whole batch is transformed with a single ``rfft`` call, which is
    what makes offline analysis of long traces cheap.  Returns
    ``(elasticity, peak, background)`` arrays of length ``m``.

    ``significance_floor`` is a rate amplitude (bytes/second): a cross-
    traffic oscillation smaller than this is insignificant, so it is
    added to the background before taking the ratio.  Without it, an
    all-but-empty path (ẑ ~ 0 everywhere) can produce arbitrarily large
    ratios out of numerical residue.
    """
    n = windows.shape[1]
    detrended = windows - windows.mean(axis=1, keepdims=True)
    windowed = detrended * _hann_window(n)
    spectrum = np.abs(np.fft.rfft(windowed, axis=1))
    freqs = _rfft_freqs(n, sample_interval)

    # Peak: the pulse-frequency bin and its immediate neighbours (the
    # Hann window spreads a tone over ~2 bins).
    pulse_idx = int(np.argmin(np.abs(freqs - pulse_freq)))
    lo = max(0, pulse_idx - 1)
    hi = min(spectrum.shape[1], pulse_idx + 2)
    peak = spectrum[:, lo:hi].max(axis=1)

    # Background: median amplitude in the band, excluding the pulse
    # bins (and their spread).
    in_band = (freqs >= band[0]) & (freqs <= band[1])
    exclude = np.zeros_like(in_band)
    exclude[max(0, pulse_idx - 2):pulse_idx + 3] = True
    comparison = spectrum[:, in_band & ~exclude]
    if comparison.shape[1] == 0:
        raise AnalysisError(
            "comparison band is empty; widen band or window")
    background = np.median(comparison, axis=1)
    # A Hann-windowed sine of amplitude `a` over n samples produces an
    # rfft peak of ~ a*n/4; convert the rate floor to spectrum units.
    floor = significance_floor * n / 4.0
    denom = np.maximum(background + floor, 1e-12)
    return peak / denom, peak, background


def _spectrum_elasticity(z: np.ndarray, sample_interval: float,
                         pulse_freq: float, band: tuple[float, float],
                         significance_floor: float = 0.0
                         ) -> tuple[float, float, float]:
    """Return (elasticity, peak, background) for one window of ẑ."""
    elasticity, peak, background = _spectrum_elasticity_batch(
        np.asarray(z)[None, :], sample_interval, pulse_freq, band,
        significance_floor=significance_floor)
    return float(elasticity[0]), float(peak[0]), float(background[0])


class ElasticityEstimator:
    """Streaming elasticity estimator over a sliding window of ẑ samples.

    Feed ẑ samples at a fixed cadence with :meth:`add_sample`; every
    ``update_interval`` seconds (once the window is full) a new
    :class:`ElasticityReading` is appended to :attr:`readings`.

    Args:
        pulse_freq: the probe's pulse frequency (Hz).
        sample_interval: spacing of ẑ samples (seconds).
        window: FFT window length (seconds); 5 s at f_p = 5 Hz gives
            25 pulse periods per window.
        update_interval: how often to emit a reading (seconds).
        band: comparison band (Hz) for the background estimate.
        significance_frac: oscillations below this fraction of
            :attr:`scale` are insignificant (see
            :func:`_spectrum_elasticity`); ignored while ``scale`` is 0.
    """

    def __init__(self, pulse_freq: float = 5.0,
                 sample_interval: float = 0.01, window: float = 5.0,
                 update_interval: float = 0.5,
                 band: tuple[float, float] = (1.0, 12.0),
                 significance_frac: float = 0.01):
        if window < 4.0 / pulse_freq:
            raise ConfigError("window must cover several pulse periods")
        if sample_interval <= 0 or sample_interval > 1.0 / (2 * pulse_freq):
            raise ConfigError(
                "sample_interval must satisfy Nyquist for the pulse")
        self.pulse_freq = pulse_freq
        self.sample_interval = sample_interval
        self.window_samples = int(round(window / sample_interval))
        self.update_interval = update_interval
        self.band = band
        self.significance_frac = significance_frac
        #: rate scale (bytes/second) for the significance floor; the
        #: owner (e.g. NimbusCca) keeps this at its capacity estimate.
        self.scale = 0.0
        # Fixed-size ring buffer: appends are O(1) array stores instead
        # of Python-list slicing + list->array conversion per sample.
        self._buffer = np.empty(self.window_samples)
        self._pos = 0
        self._count = 0
        self._last_update = float("-inf")
        self.readings: list[ElasticityReading] = []

    @property
    def window_values(self) -> np.ndarray:
        """The buffered ẑ samples, oldest first (a copy)."""
        if self._count < self.window_samples:
            return self._buffer[:self._count].copy()
        if self._pos == 0:
            return self._buffer.copy()
        return np.concatenate((self._buffer[self._pos:],
                               self._buffer[:self._pos]))

    def add_sample(self, now: float, z: float) -> ElasticityReading | None:
        """Add one ẑ sample; returns a new reading when one is emitted."""
        self._buffer[self._pos] = z
        self._pos = (self._pos + 1) % self.window_samples
        if self._count < self.window_samples:
            self._count += 1
        if (self._count < self.window_samples
                or now - self._last_update < self.update_interval):
            return None
        self._last_update = now
        z_arr = self.window_values
        elasticity, peak, background = _spectrum_elasticity(
            z_arr, self.sample_interval, self.pulse_freq, self.band,
            significance_floor=self.significance_frac * self.scale)
        reading = ElasticityReading(
            time=now, elasticity=elasticity, peak_amplitude=peak,
            background_amplitude=background,
            mean_cross_rate=float(z_arr.mean()))
        self.readings.append(reading)
        return reading


def elasticity_series(times, z_values, pulse_freq: float = 5.0,
                      window: float = 5.0, step: float = 0.5,
                      band: tuple[float, float] = (1.0, 12.0)
                      ) -> list[ElasticityReading]:
    """Offline sliding-window elasticity over a recorded ẑ series.

    ``times`` must be evenly spaced; the sample interval is inferred.
    """
    t = np.asarray(times, dtype=float)
    z = np.asarray(z_values, dtype=float)
    if len(t) != len(z):
        raise AnalysisError("times and z_values must have equal length")
    if len(t) < 3:
        raise AnalysisError("need at least three samples")
    intervals = np.diff(t)
    dt = float(np.median(intervals))
    if np.any(np.abs(intervals - dt) > dt * 0.01):
        raise AnalysisError("times must be evenly spaced")

    win = int(round(window / dt))
    hop = max(1, int(round(step / dt)))
    ends = np.arange(win, len(z) + 1, hop)
    if len(ends) == 0:
        return []
    # One strided view + one batched FFT over every window at once,
    # instead of a Python loop transforming windows one by one.
    windows = np.lib.stride_tricks.sliding_window_view(z, win)[ends - win]
    elasticity, peak, background = _spectrum_elasticity_batch(
        windows, dt, pulse_freq, band)
    means = windows.mean(axis=1)
    return [ElasticityReading(
        time=float(t[end - 1]), elasticity=float(e),
        peak_amplitude=float(p), background_amplitude=float(b),
        mean_cross_rate=float(m))
        for end, e, p, b, m in zip(ends, elasticity, peak, background,
                                   means)]
