"""Unit tests for TCPInfo limit-state accounting."""

import pytest

from repro.tcp import LimitState, TcpInfoTracker


def test_initial_state_is_idle():
    t = TcpInfoTracker()
    assert t.state is LimitState.IDLE


def test_durations_accumulate_per_state():
    t = TcpInfoTracker(start_time=0.0)
    t.set_state(LimitState.BUSY, 1.0)           # idle 0..1
    t.set_state(LimitState.APP_LIMITED, 3.0)    # busy 1..3
    t.set_state(LimitState.BUSY, 7.0)           # app  3..7
    assert t.duration(LimitState.IDLE, 10.0) == pytest.approx(1.0)
    assert t.duration(LimitState.BUSY, 10.0) == pytest.approx(2.0 + 3.0)
    assert t.duration(LimitState.APP_LIMITED, 10.0) == pytest.approx(4.0)


def test_current_state_duration_includes_open_interval():
    t = TcpInfoTracker()
    t.set_state(LimitState.RWND_LIMITED, 2.0)
    assert t.duration(LimitState.RWND_LIMITED, 5.0) == pytest.approx(3.0)


def test_snapshot_reports_microseconds():
    t = TcpInfoTracker(start_time=0.0)
    t.set_state(LimitState.APP_LIMITED, 0.0)
    t.set_state(LimitState.BUSY, 2.0)
    snap = t.snapshot(4.0)
    assert snap.app_limited_us == pytest.approx(2_000_000)
    assert snap.busy_time_us == pytest.approx(2_000_000)
    assert snap.elapsed_time_us == pytest.approx(4_000_000)


def test_snapshot_throughput_is_delta_based():
    t = TcpInfoTracker(start_time=0.0)
    t.bytes_acked = 1000
    first = t.snapshot(1.0)
    assert first.throughput_bps == pytest.approx(1000.0)
    t.bytes_acked = 1000  # no progress
    second = t.snapshot(2.0)
    assert second.throughput_bps == 0.0
    t.bytes_acked = 4000
    third = t.snapshot(4.0)
    assert third.throughput_bps == pytest.approx(1500.0)


def test_busy_time_includes_window_limited_states():
    t = TcpInfoTracker(start_time=0.0)
    t.set_state(LimitState.CWND_LIMITED, 0.0)
    t.set_state(LimitState.RWND_LIMITED, 1.0)
    t.set_state(LimitState.BUSY, 2.0)
    snap = t.snapshot(3.0)
    assert snap.busy_time_us == pytest.approx(3_000_000)
    assert snap.rwnd_limited_us == pytest.approx(1_000_000)
    assert snap.cwnd_limited_us == pytest.approx(1_000_000)


def test_rtt_fields_passed_through():
    t = TcpInfoTracker()
    snap = t.snapshot(1.0, min_rtt_s=0.05, smoothed_rtt_s=0.06)
    assert snap.min_rtt_s == 0.05
    assert snap.smoothed_rtt_s == 0.06
