"""Benchmark E8: offered load vs allocation on access links (§2.2).

Asserts: below saturation every application's allocation equals its
offered load (CCA dynamics irrelevant); past saturation allocation
errors appear.
"""

from repro.experiments import access_link

from conftest import once


def test_access_link(benchmark, bench_scale):
    duration = 10.0 if bench_scale == "full" else 3.0
    result = once(benchmark, access_link.run, duration=duration)

    print()
    print(result.text)

    m = result.metrics
    assert m["max_error_below_saturation"] < 0.02
    assert m["min_error_above_saturation"] > 0.05
