"""Rate-based (fluid) simulation backend.

The packet engine simulates every packet; this backend evolves per-flow
*sending rates* and a shared bottleneck queue with a fixed time step,
which makes one scenario cost O(flows) per tick instead of O(packets).
It produces the same observable surfaces as the packet backend -- a
:class:`~repro.qa.scenario.ScenarioOutcome` with a probe verdict, a
:class:`~repro.core.campaign.PathResult` with a
:class:`~repro.core.probe.ProbeReport` -- so campaigns, figures, the
store, and the HTTP service run unchanged with ``backend="fluid"``.

Where it is valid (and where it is not) is documented in DESIGN.md
("The fluid backend"); the short version is that it models steady-state
rate dynamics on ~10 ms-and-up timescales faithfully, and does not
model packetization, ACK clocking, slow-start bursts, or
sub-millisecond queue transients.  The :mod:`repro.qa` agreement
oracle cross-checks its verdicts against the packet engine on the
calibrated scenario envelope.
"""

from .model import FluidModel
from .runner import run_path_fluid, run_scenario_fluid

__all__ = ["FluidModel", "run_path_fluid", "run_scenario_fluid"]
