"""Serializable result records for measurement outputs.

Experiments write their rows through these helpers so every figure's
backing data lands as CSV next to the printed output.  Writes are
atomic (tmp + ``os.replace`` via :mod:`repro.store.atomic`): a killed
run leaves either the previous complete file or the new one, never a
truncated artifact.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict, is_dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from ..store.atomic import atomic_open


def write_csv(path, rows: Iterable[Mapping | Sequence],
              header: Sequence[str] | None = None) -> None:
    """Atomically write rows (dicts or sequences) as CSV.

    Dict rows take their header from the first row's keys unless
    ``header`` is given; sequence rows require ``header``.
    """
    rows = list(rows)
    path = Path(path)
    with atomic_open(path, "w", newline="") as f:
        if not rows:
            if header:
                csv.writer(f).writerow(header)
            return
        first = rows[0]
        if isinstance(first, Mapping):
            fields = list(header) if header else list(first.keys())
            writer = csv.DictWriter(f, fieldnames=fields)
            writer.writeheader()
            for row in rows:
                writer.writerow(dict(row))
        else:
            writer = csv.writer(f)
            if header:
                writer.writerow(header)
            writer.writerows(rows)


def write_json(path, payload) -> None:
    """Atomically write a (possibly dataclass-bearing) payload as
    pretty JSON."""
    path = Path(path)

    def default(obj):
        if is_dataclass(obj) and not isinstance(obj, type):
            return asdict(obj)
        if hasattr(obj, "value"):  # enums
            return obj.value
        if hasattr(obj, "tolist"):  # numpy
            return obj.tolist()
        raise TypeError(f"not JSON-serializable: {type(obj)}")

    with atomic_open(path, "w") as f:
        json.dump(payload, f, indent=2, default=default)
        f.write("\n")
