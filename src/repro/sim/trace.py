"""Mahimahi link-trace parsing and synthesis.

Mahimahi traces are text files with one integer millisecond timestamp
per line; each line is an opportunity to deliver one MTU-sized packet.
We parse that format and synthesize traces for constant rates, periodic
variation, and random-walk cellular-style links.
"""

from __future__ import annotations

import math
from pathlib import Path

import numpy as np

from ..errors import TraceFormatError
from ..units import mbps

#: Bytes delivered per trace opportunity (Mahimahi's MTU).
OPPORTUNITY_BYTES = 1514


def parse_trace(text: str) -> list[float]:
    """Parse Mahimahi trace text into a list of millisecond timestamps."""
    timestamps: list[float] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            value = int(line)
        except ValueError as exc:
            raise TraceFormatError(
                f"line {lineno}: expected integer milliseconds, got {line!r}"
            ) from exc
        if value < 0:
            raise TraceFormatError(f"line {lineno}: negative timestamp")
        if timestamps and value < timestamps[-1]:
            raise TraceFormatError(
                f"line {lineno}: timestamps must be non-decreasing")
        timestamps.append(float(value))
    if not timestamps:
        raise TraceFormatError("trace contains no opportunities")
    if timestamps[-1] <= 0:
        raise TraceFormatError("trace period must be positive")
    return timestamps


def load_trace(path: str | Path) -> list[float]:
    """Load a Mahimahi trace file."""
    return parse_trace(Path(path).read_text())


def format_trace(opportunities_ms: list[float]) -> str:
    """Render opportunity timestamps back into Mahimahi's text format."""
    return "\n".join(str(int(round(t))) for t in opportunities_ms) + "\n"


def constant_rate_trace(rate_mbps: float, duration_ms: int = 1000) -> list[float]:
    """Opportunities for a constant ``rate_mbps`` link over one period.

    >>> len(constant_rate_trace(12.112, 1000))  # 1 opportunity per ms
    1000
    """
    if rate_mbps <= 0:
        raise TraceFormatError(f"rate must be positive: {rate_mbps}")
    opportunities = mbps(rate_mbps) * (duration_ms / 1000.0) / OPPORTUNITY_BYTES
    count = max(1, int(round(opportunities)))
    step = duration_ms / count
    return [round((i + 1) * step, 3) for i in range(count)]


def periodic_rate_trace(low_mbps: float, high_mbps: float,
                        period_ms: int = 2000,
                        duration_ms: int = 4000) -> list[float]:
    """A square-wave trace alternating between two rates."""
    if low_mbps <= 0 or high_mbps <= 0:
        raise TraceFormatError("rates must be positive")
    out: list[float] = []
    t = 0.0
    toggle_high = True
    while t < duration_ms:
        rate = high_mbps if toggle_high else low_mbps
        seg_end = min(t + period_ms / 2.0, duration_ms)
        per_ms = mbps(rate) / 1000.0 / OPPORTUNITY_BYTES
        n = max(1, int(round((seg_end - t) * per_ms)))
        step = (seg_end - t) / n
        out.extend(round(t + (i + 1) * step, 3) for i in range(n))
        t = seg_end
        toggle_high = not toggle_high
    return out


def cellular_trace(mean_mbps: float, duration_ms: int = 10_000,
                   volatility: float = 0.3, seed: int = 0,
                   step_ms: int = 100) -> list[float]:
    """A random-walk trace mimicking cellular capacity variation.

    The instantaneous rate follows a geometric random walk around
    ``mean_mbps`` with reflection, re-sampled every ``step_ms`` and
    linearly interpolated per millisecond between samples -- abrupt
    rate steps every ``step_ms`` would plant a spectral comb at
    ``1000/step_ms`` Hz and its subharmonics, which an elasticity
    probe could mistake for pulse-reactive cross traffic.
    """
    if mean_mbps <= 0:
        raise TraceFormatError(f"mean rate must be positive: {mean_mbps}")
    rng = np.random.default_rng(seed)
    low, high = math.log(mean_mbps / 8.0), math.log(mean_mbps * 4.0)
    n_knots = int(math.ceil(duration_ms / step_ms)) + 1
    log_rate = math.log(mean_mbps)
    knots = []
    for _ in range(n_knots):
        knots.append(log_rate)
        log_rate += rng.normal(0.0,
                               volatility * math.sqrt(step_ms / 1000.0))
        log_rate = min(max(log_rate, low), high)

    out: list[float] = []
    carry = 0.0
    for t_ms in range(int(duration_ms)):
        pos = t_ms / step_ms
        idx = min(int(pos), n_knots - 2)
        frac = pos - idx
        rate = math.exp(knots[idx] * (1 - frac) + knots[idx + 1] * frac)
        carry += mbps(rate) / 1000.0  # bytes deliverable this ms
        while carry >= OPPORTUNITY_BYTES:
            carry -= OPPORTUNITY_BYTES
            out.append(float(t_ms + 1))
    if not out:
        out.append(float(duration_ms))
    return out
