"""Unit tests for CCA window arithmetic (synthetic ACK streams)."""

import pytest

from repro.cca import (AckSample, BbrCca, CbrCca, CopaCca, CubicCca,
                       NewRenoCca, RenoCca, VegasCca, WindowedExtremum,
                       make_cca)
from repro.errors import ConfigError


def ack(now=1.0, acked=1448, rtt=0.05, min_rtt=0.05, srtt=0.05,
        inflight=14480, rate=None, rate_app_limited=False,
        delivered=100_000, in_recovery=False, ecn=False):
    return AckSample(now=now, acked_bytes=acked, rtt=rtt, min_rtt=min_rtt,
                     srtt=srtt, inflight_bytes=inflight,
                     delivery_rate=rate,
                     delivery_rate_app_limited=rate_app_limited,
                     delivered_total=delivered, in_recovery=in_recovery,
                     ecn_echo=ecn)


class TestRegistry:
    def test_all_names_buildable(self):
        for name in ("reno", "newreno", "cubic", "vegas", "copa", "bbr"):
            cca = make_cca(name)
            assert cca.name == name

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_cca("quic-magic")


class TestReno:
    def test_slow_start_doubles_per_rtt(self):
        cca = RenoCca(initial_cwnd=10.0)
        # 10 acks of one packet each ~ one RTT of IW10.
        for _ in range(10):
            cca.on_ack(ack())
        assert cca.cwnd == pytest.approx(20.0)

    def test_congestion_avoidance_adds_one_per_rtt(self):
        cca = RenoCca(initial_cwnd=10.0, ssthresh=10.0)
        for _ in range(10):
            cca.on_ack(ack())
        assert cca.cwnd == pytest.approx(11.0, rel=0.02)

    def test_loss_halves(self):
        cca = RenoCca(initial_cwnd=20.0, ssthresh=10.0)
        cca.on_loss(1.0, 1448)
        assert cca.cwnd == pytest.approx(10.0)
        assert cca.ssthresh == pytest.approx(10.0)

    def test_rto_collapses_to_one(self):
        cca = RenoCca(initial_cwnd=20.0, ssthresh=10.0)
        cca.on_rto(1.0)
        assert cca.cwnd == 1.0

    def test_min_cwnd_floor(self):
        cca = RenoCca(initial_cwnd=2.0, ssthresh=1.0, min_cwnd=2.0)
        cca.on_loss(1.0, 1448)
        assert cca.cwnd >= 2.0

    def test_frozen_during_recovery(self):
        cca = RenoCca(initial_cwnd=10.0)
        before = cca.cwnd
        cca.on_ack(ack(in_recovery=True))
        assert cca.cwnd == before

    def test_ecn_halves_once_per_rtt(self):
        cca = RenoCca(initial_cwnd=16.0, ssthresh=8.0)
        cca.on_ack(ack(now=1.0, ecn=True, srtt=0.1))
        after_first = cca.cwnd
        cca.on_ack(ack(now=1.01, ecn=True, srtt=0.1))
        assert cca.cwnd == after_first  # within the same RTT
        cca.on_ack(ack(now=1.2, ecn=True, srtt=0.1))
        assert cca.cwnd < after_first

    def test_abc_caps_jump_acks(self):
        cca = RenoCca(initial_cwnd=10.0)
        cca.on_ack(ack(acked=100 * 1448))  # SACK-hole jump
        assert cca.cwnd <= 12.0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            RenoCca(initial_cwnd=0.5)

    def test_newreno_shares_arithmetic(self):
        assert isinstance(NewRenoCca(), RenoCca)


class TestCubic:
    def test_slow_start_capped_at_ssthresh(self):
        cca = CubicCca(initial_cwnd=10.0)
        cca.ssthresh = 15.0
        # Five 1-packet acks reach exactly ssthresh; a jump-ack next
        # would overshoot without the cap.
        for _ in range(4):
            cca.on_ack(ack())
        cca.on_ack(ack(acked=10 * 1448))
        assert cca.cwnd == pytest.approx(15.0)

    def test_loss_multiplies_by_beta(self):
        cca = CubicCca(initial_cwnd=100.0, beta=0.7)
        cca.ssthresh = 50.0  # leave slow start
        cca.on_loss(1.0, 1448)
        assert cca.cwnd == pytest.approx(70.0)

    def test_growth_approaches_w_max_then_exceeds(self):
        cca = CubicCca(initial_cwnd=100.0, beta=0.7)
        cca.ssthresh = 50.0
        cca.on_loss(0.0, 1448)  # w_max = 100, cwnd = 70
        t, cwnd_track = 0.0, []
        for i in range(4000):
            t += 0.01
            cca.on_ack(ack(now=t, srtt=0.05))
            cwnd_track.append(cca.cwnd)
        assert max(cwnd_track) > 100.0  # eventually probes beyond w_max
        # Concave first: early growth rate decreasing.
        assert cwnd_track[100] < 100.0

    def test_ca_growth_never_exceeds_target_jump(self):
        cca = CubicCca(initial_cwnd=50.0)
        cca.ssthresh = 10.0
        cca.w_max = 60.0
        cca.on_ack(ack(now=100.0, acked=80 * 1448, srtt=0.05))
        # Even with a giant ack, growth bounded by cubic target.
        assert cca.cwnd < 200.0

    def test_invalid_config(self):
        with pytest.raises(ConfigError):
            CubicCca(beta=1.5)
        with pytest.raises(ConfigError):
            CubicCca(c=-1)


class TestVegas:
    def test_grows_when_queue_below_alpha(self):
        cca = VegasCca(initial_cwnd=10.0)
        cca._in_slow_start = False
        # rtt == min_rtt: zero queue -> grow 1 per RTT.
        cca.on_ack(ack(now=1.0, rtt=0.05, min_rtt=0.05))
        assert cca.cwnd == pytest.approx(11.0)

    def test_shrinks_when_queue_above_beta(self):
        cca = VegasCca(initial_cwnd=20.0, alpha=2.0, beta=4.0)
        cca._in_slow_start = False
        # queue estimate = cwnd * (1 - min/rtt) ... choose rtt so diff>4
        cca.on_ack(ack(now=1.0, rtt=0.10, min_rtt=0.05))
        assert cca.cwnd == pytest.approx(19.0)

    def test_holds_between_alpha_and_beta(self):
        cca = VegasCca(initial_cwnd=10.0, alpha=2.0, beta=6.0)
        cca._in_slow_start = False
        # diff = cwnd*(1 - min/rtt) = 10*(1-0.05/0.0666) ~ 2.5
        cca.on_ack(ack(now=1.0, rtt=0.0666, min_rtt=0.05))
        assert cca.cwnd == pytest.approx(10.0)

    def test_once_per_rtt(self):
        cca = VegasCca(initial_cwnd=10.0)
        cca._in_slow_start = False
        cca.on_ack(ack(now=1.0, rtt=0.05, min_rtt=0.05, srtt=0.05))
        cca.on_ack(ack(now=1.01, rtt=0.05, min_rtt=0.05, srtt=0.05))
        assert cca.cwnd == pytest.approx(11.0)  # second ack ignored

    def test_slow_start_exit_on_gamma(self):
        cca = VegasCca(initial_cwnd=10.0, gamma=1.0)
        assert cca.in_slow_start
        cca.on_ack(ack(now=1.0, rtt=0.2, min_rtt=0.05))
        assert not cca.in_slow_start


class TestBbr:
    def test_startup_grows_pacing_with_bandwidth(self):
        cca = BbrCca()
        for i in range(6):
            cca.on_ack(ack(now=0.05 * i, rate=1e6 * 2 ** i,
                           delivered=10_000 * (i + 1)))
        # Bandwidth still growing 2x per sample: must not leave STARTUP.
        assert cca.state == "STARTUP"
        assert cca.pacing_rate > 1e6

    def test_exits_startup_when_bw_plateaus(self):
        cca = BbrCca()
        delivered = 0
        now = 0.0
        for _ in range(60):
            now += 0.05
            delivered += 20_000
            cca.on_ack(ack(now=now, rate=5e6, delivered=delivered,
                           inflight=10_000))
        assert cca.state in ("DRAIN", "PROBE_BW")

    def test_probe_bw_cycles_gains(self):
        cca = BbrCca()
        delivered, now = 0, 0.0
        for _ in range(400):
            now += 0.02
            delivered += 20_000
            cca.on_ack(ack(now=now, rate=5e6, delivered=delivered,
                           inflight=10_000))
        assert cca.state in ("PROBE_BW", "PROBE_RTT")

    def test_app_limited_samples_ignored_unless_larger(self):
        cca = BbrCca()
        cca.on_ack(ack(now=0.1, rate=10e6, delivered=10_000))
        # Smaller app-limited sample: ignored (it underestimates).
        cca.on_ack(ack(now=0.2, rate=5e6, delivered=20_000,
                       rate_app_limited=True))
        assert cca.bandwidth == pytest.approx(10e6)
        # Larger app-limited sample: counted (BBR's rule -- a rate you
        # achieved is a rate the path supports).
        cca.on_ack(ack(now=0.3, rate=50e6, delivered=30_000,
                       rate_app_limited=True))
        assert cca.bandwidth == pytest.approx(50e6)

    def test_ignores_loss(self):
        cca = BbrCca()
        cca.on_ack(ack(now=0.1, rate=10e6, delivered=10_000))
        before = cca.cwnd
        cca.on_loss(0.2, 1448)
        assert cca.cwnd == before


class TestCopa:
    def test_grows_without_queue(self):
        cca = CopaCca(initial_cwnd=10.0)
        cca.on_ack(ack(now=0.1, rtt=0.05, min_rtt=0.05))
        assert cca.cwnd > 10.0

    def test_shrinks_with_large_queue(self):
        cca = CopaCca(initial_cwnd=50.0, delta=0.5)
        cca._in_slow_start = False
        for i in range(20):
            cca.on_ack(ack(now=0.1 + 0.01 * i, rtt=0.25, min_rtt=0.05,
                           srtt=0.25))
        assert cca.cwnd < 50.0

    def test_loss_halves(self):
        cca = CopaCca(initial_cwnd=40.0)
        cca.on_loss(1.0, 1448)
        assert cca.cwnd == pytest.approx(20.0)

    def test_paces_at_twice_cwnd_rate(self):
        cca = CopaCca(initial_cwnd=10.0)
        cca.on_ack(ack(now=0.1, rtt=0.05, min_rtt=0.05, srtt=0.05))
        assert cca.pacing_rate == pytest.approx(
            2.0 * cca.cwnd * cca.mss / 0.05, rel=0.01)


class TestCbr:
    def test_fixed_rate_ignores_everything(self):
        cca = CbrCca(rate=1e6)
        cca.on_loss(1.0, 1448)
        cca.on_rto(2.0)
        assert cca.pacing_rate == 1e6
        assert cca.cwnd > 1e6  # effectively unlimited

    def test_invalid_rate(self):
        with pytest.raises(ConfigError):
            CbrCca(rate=0)


class TestWindowedExtremum:
    def test_max_tracks_window(self):
        f = WindowedExtremum(window=10.0, mode="max")
        f.update(0.0, 5.0)
        f.update(1.0, 3.0)
        assert f.value == 5.0
        f.update(11.0, 2.0)  # 5.0 expired
        assert f.value == 3.0
        f.update(12.0, 1.0)  # 3.0 expired too (key 1.0 < horizon 2.0)
        assert f.value == 2.0

    def test_min_mode(self):
        f = WindowedExtremum(window=10.0, mode="min")
        f.update(0.0, 5.0)
        f.update(1.0, 8.0)
        assert f.value == 5.0

    def test_empty_returns_none(self):
        assert WindowedExtremum(1.0).value is None

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            WindowedExtremum(1.0, mode="median")
