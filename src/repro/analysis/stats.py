"""Distribution statistics: empirical CDFs, percentiles, bootstrap CIs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class Cdf:
    """An empirical CDF.

    Attributes:
        values: sorted sample values.
        fractions: cumulative fraction at each value (ends at 1.0).
    """

    values: np.ndarray
    fractions: np.ndarray

    @classmethod
    def from_samples(cls, samples) -> "Cdf":
        x = np.sort(np.asarray(samples, dtype=float))
        if len(x) == 0:
            raise AnalysisError("cannot build a CDF from no samples")
        frac = np.arange(1, len(x) + 1, dtype=float) / len(x)
        return cls(values=x, fractions=frac)

    def quantile(self, q: float) -> float:
        """Value at cumulative fraction ``q`` (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise AnalysisError(f"quantile must be in (0, 1]: {q}")
        idx = int(np.searchsorted(self.fractions, q))
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    def fraction_below(self, value: float) -> float:
        """Fraction of samples <= ``value``."""
        return float(np.searchsorted(self.values, value, side="right")
                     / len(self.values))

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """Downsampled (value, fraction) pairs for plotting/CSV export."""
        n = len(self.values)
        if n <= max_points:
            idx = np.arange(n)
        else:
            idx = np.unique(np.linspace(0, n - 1, max_points).astype(int))
        return [(float(self.values[i]), float(self.fractions[i]))
                for i in idx]


#: Default :class:`CdfSketch` binning, sized for throughput samples:
#: log-spaced from 100 bytes/s to 10 GB/s at ~3.7% relative resolution.
SKETCH_LO = 1e2
SKETCH_HI = 1e10
SKETCH_BINS = 512


@dataclass(frozen=True)
class CdfSketch:
    """A mergeable, fixed-memory CDF summary.

    A log-spaced histogram plus the exact min/max.  All state is
    integer counts and order-free extrema, so :meth:`merge` is exactly
    commutative, associative, and deterministic -- sketches built from
    any sharding of the same samples are byte-identical once merged.
    That is what lets streamed and materialized pipeline runs compare
    equal (:meth:`repro.ndt.Fig2Result.aggregate_fingerprint`), at the
    cost of quantiles only being accurate to the bin width.

    Attributes:
        lo / hi / bins: binning geometry; sketches merge only when it
            matches.
        counts: ``bins + 2`` integers -- underflow, the bins, overflow.
        vmin / vmax: exact sample extrema (``None`` when empty).
        total: number of samples absorbed.
    """

    lo: float = SKETCH_LO
    hi: float = SKETCH_HI
    bins: int = SKETCH_BINS
    counts: tuple[int, ...] = ()
    vmin: float | None = None
    vmax: float | None = None
    total: int = 0

    def __post_init__(self):
        if not (0 < self.lo < self.hi):
            raise AnalysisError(
                f"sketch needs 0 < lo < hi: {self.lo}, {self.hi}")
        if self.bins < 1:
            raise AnalysisError(f"sketch needs >= 1 bin: {self.bins}")
        if not self.counts:
            object.__setattr__(self, "counts", (0,) * (self.bins + 2))
        elif len(self.counts) != self.bins + 2:
            raise AnalysisError(
                f"sketch counts must have {self.bins + 2} entries, "
                f"got {len(self.counts)}")

    def _edges(self) -> np.ndarray:
        return np.logspace(np.log10(self.lo), np.log10(self.hi),
                           self.bins + 1)

    # -- construction ----------------------------------------------------

    def add_samples(self, samples) -> "CdfSketch":
        """A new sketch with ``samples`` absorbed (self is unchanged)."""
        x = np.asarray(samples, dtype=float)
        if x.ndim != 1:
            x = x.reshape(-1)
        if len(x) == 0:
            return self
        if np.any(~np.isfinite(x)):
            raise AnalysisError("sketch samples must be finite")
        idx = np.searchsorted(self._edges(), x, side="right")
        fresh = np.bincount(idx, minlength=self.bins + 2)
        counts = tuple(int(c + f)
                       for c, f in zip(self.counts, fresh))
        lo_x = float(np.min(x))
        hi_x = float(np.max(x))
        return CdfSketch(
            lo=self.lo, hi=self.hi, bins=self.bins, counts=counts,
            vmin=lo_x if self.vmin is None else min(self.vmin, lo_x),
            vmax=hi_x if self.vmax is None else max(self.vmax, hi_x),
            total=self.total + len(x))

    @classmethod
    def from_samples(cls, samples, lo: float = SKETCH_LO,
                     hi: float = SKETCH_HI,
                     bins: int = SKETCH_BINS) -> "CdfSketch":
        return cls(lo=lo, hi=hi, bins=bins).add_samples(samples)

    def merge(self, other: "CdfSketch") -> "CdfSketch":
        """Combine two sketches over the same binning."""
        if (self.lo, self.hi, self.bins) != (other.lo, other.hi,
                                             other.bins):
            raise AnalysisError(
                "cannot merge sketches with different binning: "
                f"({self.lo}, {self.hi}, {self.bins}) vs "
                f"({other.lo}, {other.hi}, {other.bins})")
        mins = [v for v in (self.vmin, other.vmin) if v is not None]
        maxs = [v for v in (self.vmax, other.vmax) if v is not None]
        return CdfSketch(
            lo=self.lo, hi=self.hi, bins=self.bins,
            counts=tuple(a + b
                         for a, b in zip(self.counts, other.counts)),
            vmin=min(mins) if mins else None,
            vmax=max(maxs) if maxs else None,
            total=self.total + other.total)

    # -- queries ---------------------------------------------------------

    def _bin_value(self, index: int, edges: np.ndarray) -> float:
        """Representative value of counts[index], clamped to extrema."""
        if index <= 0:
            # An occupied underflow bin necessarily holds the global min.
            value = self.lo if self.vmin is None else self.vmin
        elif index >= self.bins + 1:
            value = self.hi if self.vmax is None else self.vmax
        else:  # geometric bin midpoint
            value = float(np.sqrt(edges[index - 1] * edges[index]))
        if self.vmin is not None:
            value = min(max(value, self.vmin), self.vmax)
        return value

    def quantile(self, q: float) -> float:
        """Approximate value at cumulative fraction ``q`` (0 < q <= 1)."""
        if not 0 < q <= 1:
            raise AnalysisError(f"quantile must be in (0, 1]: {q}")
        if self.total == 0:
            raise AnalysisError("cannot query an empty sketch")
        target = q * self.total
        cum = np.cumsum(self.counts)
        index = int(np.searchsorted(cum, target))
        return self._bin_value(index, self._edges())

    @property
    def median(self) -> float:
        return self.quantile(0.5)

    def fraction_below(self, value: float) -> float:
        """Approximate fraction of samples <= ``value``."""
        if self.total == 0:
            raise AnalysisError("cannot query an empty sketch")
        index = int(np.searchsorted(self._edges(), value, side="right"))
        return float(sum(self.counts[:index + 1]) / self.total)

    def points(self, max_points: int = 200) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs for plotting/CSV export.

        Same shape as :meth:`Cdf.points`; one point per occupied bin,
        downsampled to ``max_points``.
        """
        if self.total == 0:
            raise AnalysisError("cannot query an empty sketch")
        edges = self._edges()
        cum = 0
        pts = []
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            cum += count
            pts.append((self._bin_value(index, edges),
                        cum / self.total))
        if len(pts) > max_points:
            idx = np.unique(np.linspace(0, len(pts) - 1,
                                        max_points).astype(int))
            pts = [pts[i] for i in idx]
        return pts


def percentile(samples, q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples``."""
    if not 0 <= q <= 100:
        raise AnalysisError(f"percentile must be in [0, 100]: {q}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


def bootstrap_ci(samples, statistic=np.mean, confidence: float = 0.95,
                 n_resamples: int = 1000, seed: int = 0
                 ) -> tuple[float, float, float]:
    """Bootstrap confidence interval.

    Returns:
        (point_estimate, ci_low, ci_high).
    """
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        raise AnalysisError("cannot bootstrap no samples")
    if not 0 < confidence < 1:
        raise AnalysisError(f"confidence must be in (0, 1): {confidence}")
    rng = np.random.default_rng(seed)
    estimates = np.array([
        statistic(rng.choice(x, size=len(x), replace=True))
        for _ in range(n_resamples)
    ])
    alpha = (1.0 - confidence) / 2.0
    return (float(statistic(x)),
            float(np.quantile(estimates, alpha)),
            float(np.quantile(estimates, 1.0 - alpha)))


def summarize(samples) -> dict[str, float]:
    """Mean/median/p10/p90/min/max summary of a sample set."""
    x = np.asarray(samples, dtype=float)
    if len(x) == 0:
        raise AnalysisError("cannot summarize no samples")
    return {
        "n": float(len(x)),
        "mean": float(np.mean(x)),
        "median": float(np.median(x)),
        "p10": float(np.percentile(x, 10)),
        "p90": float(np.percentile(x, 90)),
        "min": float(np.min(x)),
        "max": float(np.max(x)),
        "std": float(np.std(x)),
    }
