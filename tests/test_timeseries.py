"""Unit tests for rate/delay meters and jitter metrics."""

import numpy as np
import pytest

from repro.analysis import DelayMeter, RateMeter, ewma, jitter_metrics
from repro.errors import AnalysisError
from repro.sim.packet import make_data


def pkt(flow="f", size=1000):
    return make_data(flow, seq=0, payload=size - 52, size=size)


class TestRateMeter:
    def test_constant_rate_measured(self):
        meter = RateMeter(bin_width=0.1)
        # 1000 bytes every 10 ms = 100 kB/s.
        for i in range(100):
            meter.add(i * 0.01, 1000)
        assert meter.mean_rate(0.0, 1.0) == pytest.approx(100_000)

    def test_flow_filter(self):
        meter = RateMeter(bin_width=0.1,
                          flow_filter=lambda f: f == "wanted")
        meter.on_packet(pkt("wanted"), 0.05)
        meter.on_packet(pkt("other"), 0.05)
        assert meter.total_bytes == 1000

    def test_empty_bins_are_zero(self):
        meter = RateMeter(bin_width=0.1)
        meter.add(0.05, 500)
        times, rates = meter.series(0.0, 0.3)
        assert len(rates) == 3
        assert rates[0] == pytest.approx(5000)
        assert rates[1] == 0.0
        assert rates[2] == 0.0

    def test_series_times_are_bin_centers(self):
        meter = RateMeter(bin_width=0.2)
        times, _ = meter.series(0.0, 0.6)
        assert times == pytest.approx([0.1, 0.3, 0.5])

    def test_invalid_config_rejected(self):
        with pytest.raises(AnalysisError):
            RateMeter(bin_width=0.0)
        meter = RateMeter()
        with pytest.raises(AnalysisError):
            meter.mean_rate(1.0, 1.0)


class TestDelayMeter:
    def test_records_one_way_delay(self):
        meter = DelayMeter()
        p = pkt()
        p.sent_time = 1.0
        meter.on_packet(p, 1.05)
        times, delays = meter.as_arrays()
        assert delays[0] == pytest.approx(0.05)


class TestEwma:
    def test_alpha_one_is_identity(self):
        x = [1.0, 5.0, 2.0]
        assert list(ewma(x, alpha=1.0)) == x

    def test_smooths_toward_mean(self):
        x = [0.0, 10.0] * 50
        smooth = ewma(x, alpha=0.1)
        assert np.std(smooth[20:]) < np.std(x)

    def test_bad_alpha_rejected(self):
        with pytest.raises(AnalysisError):
            ewma([1.0], alpha=0.0)


class TestJitter:
    def test_constant_delay_has_zero_jitter(self):
        metrics = jitter_metrics([0.05] * 100)
        assert metrics["rfc3550_jitter"] == pytest.approx(0.0)
        assert metrics["delay_std"] == pytest.approx(0.0)

    def test_alternating_delay_has_positive_jitter(self):
        metrics = jitter_metrics([0.01, 0.05] * 100)
        assert metrics["rfc3550_jitter"] > 0.01
        assert metrics["mean_abs_diff"] == pytest.approx(0.04)

    def test_bursty_worse_than_smooth(self):
        rng = np.random.default_rng(0)
        smooth = 0.05 + rng.normal(0, 0.001, 500)
        bursty = 0.05 + np.where(rng.random(500) < 0.1, 0.04, 0.0)
        m_smooth = jitter_metrics(smooth)
        m_bursty = jitter_metrics(bursty)
        assert m_bursty["delay_span_p99_p1"] > m_smooth["delay_span_p99_p1"]

    def test_too_few_samples_rejected(self):
        with pytest.raises(AnalysisError):
            jitter_metrics([0.1])
