"""The fluid tick loop: flows + bottleneck, O(flows) per tick.

:class:`FluidModel` owns a set of :class:`~repro.fluid.flows.FluidFlow`
objects and one bottleneck from :mod:`repro.fluid.queue`.  Each tick
(default 5 ms) it collects every flow's sending rate into a numpy
vector, pushes the resulting byte cohort through the bottleneck, and
feeds each flow its service rate, the queueing delay, and edge-
triggered loss/mark signals.  There is no event heap, no packets, and
no per-packet Python work -- a 20-second scenario is 4000 ticks
regardless of link speed.
"""

from __future__ import annotations

import hashlib

import numpy as np

from ..errors import ConfigError
from ..units import DEFAULT_PACKET_SIZE
from .flows import Feedback, FluidFlow
from .queue import ContentionBottleneck, FairBottleneck, build_bottleneck

#: Default integration step (seconds): well below the shortest pulse
#: period (200 ms at f_p = 5 Hz) and the smallest base RTT (20 ms).
DEFAULT_DT = 0.005


def _jitter_seed(seed: int) -> int:
    """Stable child seed (same scheme as :mod:`repro.sim.jitter`)."""
    digest = hashlib.sha256(f"jitter:{seed}:fluid".encode()).digest()
    return int.from_bytes(digest[:8], "little") % (2**63)


class FluidModel:
    """Fixed-step fluid simulation of one bottleneck.

    Args:
        flows: the flows sharing the bottleneck (order fixes the
            vector index).
        rate: bottleneck link rate (bytes/second).
        buffer_bytes: bottleneck buffer (bytes).
        qdisc: one of :data:`repro.qa.scenario.QDISC_NAMES`.
        dt: integration step (seconds).
        ecn: bottleneck marks instead of early-dropping (RED only).
        jitter: endpoint-timing-jitter amplitude; each tick a masked
            flow's offered rate is multiplied by a seeded factor in
            ``[1 - a, 1 + a]`` -- the fluid analogue of the packet
            backend's pacing-clock perturbation (ACK-clock delays
            have no fluid counterpart; see :mod:`repro.sim.jitter`).
        jitter_seed: seed for the jitter stream (scenario seed).
        jitter_mask: per-flow booleans selecting which flows jitter
            touches (None = all); cross traffic is excluded to match
            the packet backend's "measured endpoints only" semantics.
        medium: optional :class:`~repro.medium.config.MediumSpec`; the
            bottleneck becomes a Bianchi-law
            :class:`~repro.fluid.queue.ContentionBottleneck` and every
            flow's delay feedback is per-station contention delay.
    """

    def __init__(self, flows: list[FluidFlow], rate: float,
                 buffer_bytes: float, qdisc: str = "droptail",
                 dt: float = DEFAULT_DT, ecn: bool = False,
                 jitter: float = 0.0, jitter_seed: int = 0,
                 jitter_mask=None, medium=None):
        if not flows:
            raise ConfigError("fluid model needs at least one flow")
        if dt <= 0:
            raise ConfigError(f"dt must be positive: {dt}")
        if jitter < 0:
            raise ConfigError(f"jitter must be >= 0: {jitter}")
        self.flows = list(flows)
        self.rate = rate
        self.dt = dt
        self.bottleneck, self.effective_rate = build_bottleneck(
            qdisc, len(flows), rate, buffer_bytes, ecn=ecn,
            medium=medium)
        self._fair = isinstance(self.bottleneck,
                                (FairBottleneck, ContentionBottleneck))
        self.now = 0.0
        self.ticks = 0
        self.jitter = jitter
        self._jitter_rng = (np.random.default_rng(_jitter_seed(jitter_seed))
                            if jitter > 0 else None)
        if jitter_mask is None:
            self._jitter_mask = np.ones(len(flows))
        else:
            if len(jitter_mask) != len(flows):
                raise ConfigError("jitter_mask length != number of flows")
            self._jitter_mask = np.asarray(jitter_mask, dtype=float)
        # Per-flow smoothed service rate, for fair-queue sojourns.
        self._svc_smoothed = np.zeros(len(flows))

    def run(self, duration: float) -> None:
        """Advance the model to ``duration`` seconds."""
        dt = self.dt
        flows = self.flows
        n = len(flows)
        rates = np.zeros(n)
        steps = int(round((duration - self.now) / dt))
        for _ in range(steps):
            now = self.now
            for i, flow in enumerate(flows):
                rates[i] = flow.rate if now >= flow.start else 0.0
            if self._jitter_rng is not None:
                rates *= 1.0 + self.jitter * self._jitter_mask * (
                    2.0 * self._jitter_rng.random(n) - 1.0)
            result = self.bottleneck.tick(rates * dt, dt)
            served = result.served
            self._svc_smoothed += 0.2 * (served / dt - self._svc_smoothed)
            for i, flow in enumerate(flows):
                if now < flow.start:
                    continue
                if self._fair:
                    q_delay = self.bottleneck.flow_delay(
                        i, self._svc_smoothed[i])
                else:
                    q_delay = result.queue_delay
                flow.advance(now, dt, Feedback(
                    delivered_rate=served[i] / dt,
                    queue_delay=q_delay,
                    loss=result.dropped[i] > 0.0,
                    ecn_mark=result.marked[i] > 0.0))
            self.now = now + dt
            self.ticks += 1

    def qdisc_stats(self) -> dict[str, float]:
        """Counters shaped like ``ScenarioOutcome.qdisc_stats``.

        Packet counts are byte totals over the reference packet size;
        they are self-consistent (enqueued = dequeued + residual) and
        deterministic, not packet-accurate.
        """
        b = self.bottleneck
        size = float(DEFAULT_PACKET_SIZE)
        residual = b.backlog
        return {
            "enqueued": round(b.accepted_bytes / size, 3),
            "dequeued": round(b.served_bytes / size, 3),
            "dequeued_bytes": round(b.served_bytes, 3),
            "drops": round(b.dropped_bytes / size, 3),
            "dropped_bytes": round(b.dropped_bytes, 3),
            "marks": round(b.marked_bytes / size, 3),
            "residual_packets": round(residual / size, 3),
            "residual_bytes": round(residual, 3),
        }
