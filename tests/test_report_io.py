"""Tests for CSV/JSON result writers."""

import json
from dataclasses import dataclass

import pytest

from repro.core.report import write_csv, write_json


class TestCsv:
    def test_dict_rows(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        lines = path.read_text().splitlines()
        assert lines[0] == "a,b"
        assert lines[1] == "1,x"

    def test_sequence_rows_with_header(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [(1, 2), (3, 4)], header=("x", "y"))
        lines = path.read_text().splitlines()
        assert lines == ["x,y", "1,2", "3,4"]

    def test_empty_rows_writes_header_only(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [], header=("a",))
        assert path.read_text().strip() == "a"

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "out.csv"
        write_csv(path, [{"v": 1}])
        assert path.exists()

    def test_explicit_header_subset(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, [{"a": 1, "b": 2}], header=("a", "b"))
        assert path.read_text().splitlines()[0] == "a,b"


class TestJson:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "out.json"
        write_json(path, {"x": [1, 2], "y": "z"})
        assert json.loads(path.read_text()) == {"x": [1, 2], "y": "z"}

    def test_dataclass_payload(self, tmp_path):
        @dataclass
        class Row:
            a: int
            b: str

        path = tmp_path / "out.json"
        write_json(path, {"row": Row(a=1, b="q")})
        assert json.loads(path.read_text()) == {"row": {"a": 1, "b": "q"}}

    def test_numpy_payload(self, tmp_path):
        import numpy as np
        path = tmp_path / "out.json"
        write_json(path, {"arr": np.array([1.5, 2.5])})
        assert json.loads(path.read_text()) == {"arr": [1.5, 2.5]}

    def test_unserializable_raises(self, tmp_path):
        with pytest.raises(TypeError):
            write_json(tmp_path / "out.json", {"bad": object()})
