"""Scenario composition: named cross-traffic factories and phase plans.

Figure 3 runs five cross-traffic types in sequence on one link; the
campaign (E7) samples cross-traffic types per path.  Both use this
registry so experiment configs can name traffic by string.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..cca.bbr import BbrCca
from ..cca.reno import RenoCca
from ..errors import ConfigError
from ..sim.engine import Simulator
from ..sim.network import PathHandles
from ..units import mbps
from .backlogged import BackloggedFlow
from .base import TrafficSource
from .cbr import CbrSource
from .poisson import PoissonShortFlows
from .video import VideoStream

CrossTrafficFactory = Callable[[Simulator, PathHandles, str, int],
                               TrafficSource]


def _reno(sim, path, flow_id, seed):
    return BackloggedFlow(sim, path, flow_id, RenoCca())


def _bbr(sim, path, flow_id, seed):
    return BackloggedFlow(sim, path, flow_id, BbrCca())


def _video(sim, path, flow_id, seed):
    return VideoStream(sim, path, flow_id)


def _poisson(sim, path, flow_id, seed):
    # ~25% load at a 48 Mbit/s link: 30 flows/s x 50 kB = 1.5 MB/s.
    return PoissonShortFlows(sim, path, arrival_rate=30.0,
                             mean_size=50_000, seed=seed, prefix=flow_id)


def _cbr(sim, path, flow_id, seed):
    return CbrSource(sim, path, flow_id, rate=mbps(12))


def _nothing(sim, path, flow_id, seed):
    return IdleSource()


class IdleSource(TrafficSource):
    """No traffic at all (the empty-path control)."""

    def start(self) -> None:
        pass

    @property
    def delivered_bytes(self) -> int:
        return 0


#: Cross-traffic types by name.  "reno" and "bbr" are the contending
#: (elastic) phases of Figure 3; "video", "poisson", and "cbr" are the
#: non-contending ones; "none" is a control.
CROSS_TRAFFIC_REGISTRY: dict[str, CrossTrafficFactory] = {
    "none": _nothing,
    "reno": _reno,
    "bbr": _bbr,
    "video": _video,
    "poisson": _poisson,
    "cbr": _cbr,
}

#: Whether each cross-traffic type truly contends for bandwidth
#: (ground truth for detector evaluation).
CROSS_TRAFFIC_IS_ELASTIC: dict[str, bool] = {
    "none": False,
    "reno": True,
    "bbr": True,
    "video": False,
    "poisson": False,
    "cbr": False,
}


def make_cross_traffic(name: str, sim: Simulator, path: PathHandles,
                       flow_id: str, seed: int = 0) -> TrafficSource:
    """Build a cross-traffic source by registry name."""
    try:
        factory = CROSS_TRAFFIC_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CROSS_TRAFFIC_REGISTRY))
        raise ConfigError(f"unknown cross traffic {name!r}; known: {known}") \
            from None
    return factory(sim, path, flow_id, seed)


@dataclass(frozen=True)
class Phase:
    """One phase of a sequenced scenario."""

    name: str
    duration: float

    def __post_init__(self):
        if self.duration <= 0:
            raise ConfigError(f"phase duration must be positive: {self}")


#: The Figure 3 phase plan: five cross-traffic types, 45 s each.
FIGURE3_PHASES = (
    Phase("reno", 45.0),
    Phase("bbr", 45.0),
    Phase("video", 45.0),
    Phase("poisson", 45.0),
    Phase("cbr", 45.0),
)
