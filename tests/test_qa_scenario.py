"""Scenario model: validation, serialization, qdisc construction,
and the runner's invariant audit."""

import dataclasses

import pytest

from repro.errors import ConfigError
from repro.qa.scenario import (FLOW_CCAS, QDISC_NAMES, FlowSpec, Scenario,
                               ScenarioOutcome, build_qdisc, run_scenario,
                               scenario_fingerprint)


def _flows_scenario(**overrides) -> Scenario:
    base = dict(family="flows", rate_mbps=8.0, rtt_ms=20.0,
                qdisc="droptail", duration=2.0, seed=42,
                flows=(FlowSpec(cca="reno"),))
    base.update(overrides)
    return Scenario(**base)


# -- validation -----------------------------------------------------------

def test_rejects_unknown_qdisc():
    with pytest.raises(ConfigError, match="unknown qdisc"):
        _flows_scenario(qdisc="wfq")


def test_rejects_unknown_cca():
    with pytest.raises(ConfigError, match="unknown flow CCA"):
        FlowSpec(cca="quic")


def test_rejects_flowless_flows_family():
    with pytest.raises(ConfigError, match="at least one flow"):
        _flows_scenario(flows=())


def test_rejects_probe_with_flows():
    with pytest.raises(ConfigError, match="probe"):
        Scenario(family="probe", rate_mbps=20.0, rtt_ms=50.0,
                 qdisc="droptail", duration=20.0, seed=0,
                 flows=(FlowSpec(cca="reno"),))


def test_rejects_bad_link_params():
    with pytest.raises(ConfigError):
        _flows_scenario(rate_mbps=0.0)
    with pytest.raises(ConfigError):
        _flows_scenario(buffer_multiplier=-1.0)
    with pytest.raises(ConfigError):
        _flows_scenario(cross_traffic="ddos")


# -- serialization --------------------------------------------------------

def test_dict_round_trip():
    scenario = _flows_scenario(
        qdisc="htb", cross_traffic="cbr",
        flows=(FlowSpec(cca="dctcp", ecn=True, user_id="a"),
               FlowSpec(cca="cbr", rate_frac=0.5, start=0.5)))
    assert Scenario.from_dict(scenario.to_dict()) == scenario


def test_fingerprint_tracks_content():
    a = _flows_scenario()
    assert scenario_fingerprint(a) == scenario_fingerprint(
        _flows_scenario())
    assert scenario_fingerprint(a) != scenario_fingerprint(
        _flows_scenario(seed=43))


def test_label_mentions_key_facts():
    label = _flows_scenario(qdisc="red").label()
    assert "red" in label and "reno" in label and "8mbps" in label


# -- qdisc construction ---------------------------------------------------

@pytest.mark.parametrize("name", QDISC_NAMES)
def test_build_qdisc_all_eight(name):
    qdisc = build_qdisc(_flows_scenario(qdisc=name))
    assert len(qdisc) == 0
    assert qdisc.byte_length == 0


def test_shaper_rates_scale_with_link():
    slow = build_qdisc(_flows_scenario(qdisc="tbf", rate_mbps=8.0))
    fast = build_qdisc(_flows_scenario(qdisc="tbf", rate_mbps=16.0))
    assert fast.rate == pytest.approx(2.0 * slow.rate)


# -- runner ---------------------------------------------------------------

def test_run_scenario_delivers_and_audits():
    outcome = run_scenario(_flows_scenario())
    assert isinstance(outcome, ScenarioOutcome)
    assert outcome.total_delivered > 0
    assert outcome.violations == []
    assert outcome.qdisc_stats["dequeued"] > 0
    assert outcome.probe is None


def test_run_scenario_deterministic():
    scenario = _flows_scenario(qdisc="sfq",
                               flows=(FlowSpec(cca="cubic"),
                                      FlowSpec(cca="bbr", user_id="b")))
    assert (run_scenario(scenario).fingerprint()
            == run_scenario(scenario).fingerprint())


def test_run_scenario_skip_invariants_same_fingerprint():
    scenario = _flows_scenario()
    audited = run_scenario(scenario, check_invariants=True)
    bare = run_scenario(scenario, check_invariants=False)
    assert audited.fingerprint() == bare.fingerprint()


def test_every_cca_runs_clean():
    for cca in FLOW_CCAS:
        scenario = _flows_scenario(
            duration=1.5,
            flows=(FlowSpec(cca=cca, ecn=(cca == "dctcp")),))
        outcome = run_scenario(scenario)
        assert outcome.violations == [], f"{cca}: {outcome.violations}"


def test_probe_scenario_reports_verdict():
    scenario = Scenario(family="probe", rate_mbps=20.0, rtt_ms=50.0,
                        qdisc="droptail", duration=13.0, seed=5,
                        cross_traffic="none")
    outcome = run_scenario(scenario)
    assert outcome.probe is not None
    assert outcome.probe["contending"] is False
    assert outcome.violations == []


def test_delayed_start_flow():
    scenario = _flows_scenario(
        flows=(FlowSpec(cca="reno"),
               FlowSpec(cca="reno", user_id="b", start=1.0)))
    outcome = run_scenario(scenario)
    assert outcome.delivered["flow-0"] > outcome.delivered["flow-1"] > 0
