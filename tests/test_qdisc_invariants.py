"""Property tests: every qdisc preserves the trace invariants.

A seeded random driver slams each of the eight qdiscs with an
arbitrary interleaving of enqueues and dequeues (mixed sizes, flows,
and users), then audits the full event trace with the four invariant
checkers -- including the final-occupancy cross-check against the live
qdisc.  This is the direct property-test counterpart of what the
fuzzer checks end to end through whole simulations.
"""

import numpy as np
import pytest

from repro.obs import assert_no_violations, capture
from repro.qa.scenario import QDISC_NAMES, FlowSpec, Scenario, build_qdisc
from repro.runtime.pool import derive_seed
from repro.sim.packet import make_data


def _qdisc_for(name: str, seed: int = 0):
    scenario = Scenario(family="flows", rate_mbps=8.0, rtt_ms=40.0,
                        qdisc=name, duration=1.0, seed=seed,
                        flows=(FlowSpec(cca="reno"),))
    return build_qdisc(scenario)


def _drive(qdisc, rng, n_ops: int = 400) -> int:
    """Random enqueue/dequeue interleaving; returns packets dequeued."""
    now = 0.0
    seq = 0
    dequeued = 0
    for _ in range(n_ops):
        now += float(rng.uniform(0.0, 0.01))
        if rng.random() < 0.6:
            size = int(rng.integers(100, 1515))
            flow = f"f{int(rng.integers(0, 4))}"
            user = "a" if rng.random() < 0.5 else "b"
            packet = make_data(flow, seq, size - 52, size=size,
                               user_id=user)
            seq += size
            qdisc.enqueue(packet, now)
        else:
            if qdisc.dequeue(now) is not None:
                dequeued += 1
    # Drain: advance past any shaper gate so tbf/policer release what
    # they are holding, then dequeue until empty.
    for _ in range(n_ops):
        ready = qdisc.next_ready_time(now)
        now = max(now + 0.05, ready if ready is not None else now)
        if qdisc.dequeue(now) is None and len(qdisc) == 0:
            break
    return dequeued


@pytest.mark.parametrize("name", QDISC_NAMES)
def test_random_drive_preserves_invariants(name):
    qdisc = _qdisc_for(name)
    rng = np.random.default_rng(derive_seed(0, 0, f"qdisc-{name}"))
    with capture() as trace:
        _drive(qdisc, rng)
    qdiscs = [qdisc]
    child = getattr(qdisc, "child", None)
    if child is not None:
        qdiscs.append(child)
    assert trace.events, f"{name} emitted no trace events"
    assert_no_violations(trace.events, qdiscs=qdiscs)


@pytest.mark.parametrize("name", QDISC_NAMES)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_random_drive_many_seeds(name, seed):
    qdisc = _qdisc_for(name, seed=seed)
    rng = np.random.default_rng(derive_seed(seed, 0, f"qdisc-{name}"))
    with capture() as trace:
        _drive(qdisc, rng, n_ops=200)
    qdiscs = [qdisc]
    child = getattr(qdisc, "child", None)
    if child is not None:
        qdiscs.append(child)
    assert_no_violations(trace.events, qdiscs=qdiscs)


@pytest.mark.parametrize("name", QDISC_NAMES)
def test_counters_consistent_after_drive(name):
    """enqueued == dequeued + drops-after-enqueue + still-queued."""
    qdisc = _qdisc_for(name)
    rng = np.random.default_rng(derive_seed(7, 0, f"qdisc-{name}"))
    _drive(qdisc, rng)
    total = [qdisc]
    child = getattr(qdisc, "child", None)
    if child is not None:
        total.append(child)
    for q in total:
        assert q.enqueued >= q.dequeued
        assert q.drops >= 0 and q.dequeued_bytes >= 0
        assert len(q) >= 0 and q.byte_length >= 0
