"""Synthetic M-Lab NDT population.

The execution environment has no BigQuery access, so we substitute a
population model for the paper's one-month, 9,984-flow NDT query
(June 2023).  The model is calibrated to the measurement literature the
paper leans on:

* Araújo et al. (INFOCOM '14) [33]: "less than 40% of traffic was
  neither application-, host-, nor receiver-limited" -- so well over
  half the flows must be filtered by §3.1's app/receiver-limited rules.
* Flach et al. (SIGCOMM '16) [16]: traffic policing on ~7% of paths.
* §2.2: cellular is a large, variable-rate slice that §3.1 infers and
  removes.

Because the data is synthetic, each record carries hidden ground truth
(`true_class`, `true_contention`), letting experiments *validate* the
passive pipeline -- something the paper itself could not do.

Behaviour classes (defaults in :class:`PopulationModel`):

=================  ====================================================
``app_limited``     sender pauses (application pattern); AppLimited > 0
``rwnd_limited``    receive window caps throughput; RWndLimited > 0
``bulk_clean``      saturates the access link for the whole test
``bulk_contended``  a competing flow arrives/leaves mid-test: the
                    throughput level genuinely shifts (CCA contention)
``policed``         token-bucket policer: high burst rate, then a hard
                    drop to the policed rate -- a level shift *without*
                    contention (the §3.1 confounder)
=================  ====================================================

Cellular/satellite access adds random-walk rate variability on top of
any class, which is why §3.1 removes those flows first.

Scale: every flow is rendered from its **own** seed stream, derived
from the generator seed and the flow index (:class:`RngRegistry`
derivation).  Record ``i`` is therefore a pure function of
``(model, seed, i)`` -- independent of every other record -- which is
what makes the dataset streamable: :meth:`~SyntheticNdtGenerator.
generate_chunks` yields it chunk by chunk at any chunk size,
:meth:`~SyntheticNdtGenerator.generate_shard` regenerates any slice
in isolation (a worker on another machine can render flows
[start, start+count) without touching the rest), and both reproduce
:meth:`~SyntheticNdtGenerator.generate` record for record.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..errors import ConfigError
from ..sim.rng import RngRegistry, _stream_seed
from ..tcp.tcp_info import TcpInfoSnapshot
from ..units import mbps
from .schema import NdtDataset, NdtRecord

#: Access-plan mix: (rate in Mbit/s, probability), loosely following
#: the US broadband plan spread reported by Paul et al. [15].
DEFAULT_PLAN_MIX = (
    (25.0, 0.10), (50.0, 0.15), (100.0, 0.30), (200.0, 0.20),
    (500.0, 0.15), (940.0, 0.10),
)

DEFAULT_ACCESS_MIX = (
    ("cable", 0.30), ("fiber", 0.25), ("dsl", 0.10),
    ("wifi", 0.10), ("cellular", 0.22), ("satellite", 0.03),
)

#: Server-side CCA mix, calibrated to the content-provider fairness
#: study of Rüth et al. (PAPERS.md): CUBIC still carries the majority
#: of flows, BBR runs on roughly a fifth of the large providers that
#: dominate traffic, with a loss-based legacy remainder.  NDT servers
#: themselves run Cubic or BBR; "other" models CDN fronts with tuned
#: stacks.
DEFAULT_CCA_MIX = (
    ("cubic", 0.64), ("bbr", 0.22), ("reno", 0.09), ("other", 0.05),
)

#: Generation chunk size used when none is given.
DEFAULT_CHUNK_SIZE = 2000


@dataclass(frozen=True)
class PopulationModel:
    """Tunable parameters of the synthetic flow population."""

    class_mix: tuple[tuple[str, float], ...] = (
        ("app_limited", 0.45),
        ("rwnd_limited", 0.14),
        ("bulk_clean", 0.24),
        ("bulk_contended", 0.10),
        ("policed", 0.07),
    )
    plan_mix: tuple[tuple[float, float], ...] = DEFAULT_PLAN_MIX
    access_mix: tuple[tuple[str, float], ...] = DEFAULT_ACCESS_MIX
    cca_mix: tuple[tuple[str, float], ...] = DEFAULT_CCA_MIX
    test_duration: float = 10.0
    snapshot_interval: float = 0.25
    throughput_noise: float = 0.04     # relative per-snapshot noise
    cellular_volatility: float = 0.25  # random-walk sigma per sqrt(s)

    def __post_init__(self):
        for mix_name in ("class_mix", "plan_mix", "access_mix",
                         "cca_mix"):
            probs = [p for _, p in getattr(self, mix_name)]
            if abs(sum(probs) - 1.0) > 1e-9:
                raise ConfigError(f"{mix_name} probabilities must sum to 1")


def _choice(rng: np.random.Generator, mix):
    values = [v for v, _ in mix]
    probs = [p for _, p in mix]
    idx = rng.choice(len(values), p=probs)
    return values[idx]


@dataclass
class _FlowPlan:
    """Intermediate per-flow draw before rendering snapshots."""

    access_type: str
    access_rate: float       # bytes/second
    behaviour: str
    min_rtt: float
    cca: str = "cubic"
    contention: bool = False
    rate_fn: object = None   # fn(t) -> goodput bytes/s
    app_limited_frac: float = 0.0
    rwnd_limited_frac: float = 0.0


class SyntheticNdtGenerator:
    """Generate an :class:`NdtDataset` from a :class:`PopulationModel`.

    >>> gen = SyntheticNdtGenerator(seed=1)
    >>> ds = gen.generate(100)
    >>> len(ds)
    100
    """

    def __init__(self, model: PopulationModel | None = None, seed: int = 0):
        self.model = model if model is not None else PopulationModel()
        self.rngs = RngRegistry(seed)

    # -- per-class rate shapes ----------------------------------------------

    def _plan_flow(self, rng: np.random.Generator) -> _FlowPlan:
        m = self.model
        access_type = _choice(rng, m.access_mix)
        if access_type == "cellular":
            rate = mbps(float(rng.uniform(5, 150)))
        elif access_type == "satellite":
            rate = mbps(float(rng.uniform(20, 200)))
        else:
            rate = mbps(float(_choice(rng, m.plan_mix)))
        behaviour = _choice(rng, m.class_mix)
        cca = _choice(rng, m.cca_mix)
        min_rtt = float(rng.lognormal(np.log(0.030), 0.6))
        min_rtt = min(max(min_rtt, 0.004), 0.4)
        plan = _FlowPlan(access_type=access_type, access_rate=rate,
                         behaviour=behaviour, min_rtt=min_rtt, cca=cca)
        builder = getattr(self, f"_build_{behaviour}")
        builder(plan, rng)
        return plan

    def _build_app_limited(self, plan: _FlowPlan,
                           rng: np.random.Generator) -> None:
        demand = plan.access_rate * float(rng.uniform(0.05, 0.6))
        plan.rate_fn = lambda t: demand
        plan.app_limited_frac = float(rng.uniform(0.2, 0.9))

    def _build_rwnd_limited(self, plan: _FlowPlan,
                            rng: np.random.Generator) -> None:
        # Throughput capped at rwnd / rtt, below the access rate.
        cap = plan.access_rate * float(rng.uniform(0.1, 0.7))
        plan.rate_fn = lambda t: cap
        plan.rwnd_limited_frac = float(rng.uniform(0.3, 0.95))

    def _build_bulk_clean(self, plan: _FlowPlan,
                          rng: np.random.Generator) -> None:
        level = plan.access_rate * float(rng.uniform(0.9, 0.97))
        plan.rate_fn = lambda t: level

    def _build_bulk_contended(self, plan: _FlowPlan,
                              rng: np.random.Generator) -> None:
        # A competing flow arrives (and possibly leaves): the NDT flow
        # drops to a contended share, then maybe recovers.  BBR senders
        # hold more than half the link against loss-based cross traffic
        # (Rüth et al.); no share exceeds 70% of line rate, so every
        # contended drop clears the detector's 25% relative-shift floor
        # and recall measures the filters, not the share draw.
        m = self.model
        full = plan.access_rate * float(rng.uniform(0.9, 0.97))
        if plan.cca == "bbr":
            share = full * float(rng.uniform(0.45, 0.70))
        else:
            share = full * float(rng.uniform(0.30, 0.60))
        t_in = float(rng.uniform(0.15, 0.6)) * m.test_duration
        leaves = rng.random() < 0.4
        t_out = t_in + float(rng.uniform(0.25, 0.8)) \
            * (m.test_duration - t_in)
        plan.contention = True

        def rate(t, full=full, share=share, t_in=t_in,
                 leaves=leaves, t_out=t_out):
            if t < t_in:
                return full
            if leaves and t >= t_out:
                return full
            return share

        plan.rate_fn = rate

    def _build_policed(self, plan: _FlowPlan,
                       rng: np.random.Generator) -> None:
        # Flach-style policer: line rate until the bucket empties, then
        # a hard drop to the policed rate.  A level shift with NO
        # contention.
        m = self.model
        policed = plan.access_rate * float(rng.uniform(0.1, 0.4))
        burst_until = float(rng.uniform(0.1, 0.4)) * m.test_duration

        def rate(t, full=plan.access_rate * 0.95, policed=policed,
                 burst_until=burst_until):
            return full if t < burst_until else policed

        plan.rate_fn = rate

    # -- rendering -----------------------------------------------------------

    def _render(self, plan: _FlowPlan, uuid: str,
                rng: np.random.Generator) -> NdtRecord:
        m = self.model
        n = int(round(m.test_duration / m.snapshot_interval))
        times = (np.arange(n) + 1) * m.snapshot_interval

        # Cellular/satellite rate variability multiplies the base shape.
        wobble = np.ones(n)
        if plan.access_type in ("cellular", "satellite"):
            steps = rng.normal(0.0, m.cellular_volatility
                               * np.sqrt(m.snapshot_interval), n)
            wobble = np.exp(np.cumsum(steps))
            wobble /= wobble.mean()

        inst = np.array([plan.rate_fn(t) for t in times]) * wobble
        inst *= 1.0 + rng.normal(0.0, m.throughput_noise, n)
        inst = np.maximum(inst, 1000.0)

        acked = np.cumsum(inst * m.snapshot_interval).astype(int)
        busy_frac = 1.0
        app_frac = plan.app_limited_frac
        rwnd_frac = plan.rwnd_limited_frac

        snapshots = []
        srtt = plan.min_rtt * float(rng.uniform(1.05, 1.8))
        for i in range(n):
            elapsed = times[i]
            snapshots.append(TcpInfoSnapshot(
                elapsed_time_us=elapsed * 1e6,
                bytes_acked=int(acked[i]),
                bytes_sent=int(acked[i] * 1.01),
                bytes_retrans=int(acked[i] * 0.002),
                busy_time_us=elapsed * busy_frac * 1e6,
                rwnd_limited_us=elapsed * rwnd_frac * 1e6,
                app_limited_us=elapsed * app_frac * 1e6,
                cwnd_limited_us=0.0,
                min_rtt_s=plan.min_rtt,
                smoothed_rtt_s=srtt,
                throughput_bps=float(inst[i]),
                retransmits=int(acked[i] * 0.002 / 1448),
            ))
        return NdtRecord(
            uuid=uuid, duration_s=m.test_duration,
            access_type=plan.access_type,
            access_rate_bps=plan.access_rate,
            snapshots=tuple(snapshots),
            true_class=plan.behaviour,
            true_contention=plan.contention,
            cca=plan.cca,
        )

    # -- streaming generation ------------------------------------------------

    def _flow_rng(self, index: int) -> np.random.Generator:
        """The private RNG of flow ``index``.

        Derived from (seed, index) alone, so flow ``index`` is the same
        record no matter which chunk, shard, process, or machine
        renders it.
        """
        return np.random.default_rng(
            _stream_seed(self.rngs.seed, f"flow:{index}"))

    def generate_record(self, index: int) -> NdtRecord:
        """Generate the single record at position ``index``."""
        if index < 0:
            raise ConfigError(f"flow index must be >= 0: {index}")
        rng = self._flow_rng(index)
        return self._render(self._plan_flow(rng),
                            f"synth-{index:08d}", rng)

    def generate_shard(self, start: int, count: int) -> NdtDataset:
        """Generate records [start, start+count) in isolation."""
        if start < 0:
            raise ConfigError(f"shard start must be >= 0: {start}")
        if count <= 0:
            raise ConfigError(f"shard count must be positive: {count}")
        records = [self.generate_record(start + i) for i in range(count)]
        return NdtDataset(
            records=records,
            description=(f"synthetic NDT shard [{start}, "
                         f"{start + count}), seed={self.rngs.seed}"))

    def generate_chunks(self, n_flows: int,
                        chunk_size: int = DEFAULT_CHUNK_SIZE
                        ) -> Iterator[NdtDataset]:
        """Yield the ``n_flows`` population as bounded-memory chunks.

        Concatenating the chunks reproduces :meth:`generate` record for
        record at any ``chunk_size``.
        """
        if n_flows <= 0:
            raise ConfigError(f"n_flows must be positive: {n_flows}")
        if chunk_size <= 0:
            raise ConfigError(
                f"chunk_size must be positive: {chunk_size}")
        for start in range(0, n_flows, chunk_size):
            yield self.generate_shard(
                start, min(chunk_size, n_flows - start))

    def generate(self, n_flows: int) -> NdtDataset:
        """Generate ``n_flows`` records (the paper used 9,984)."""
        if n_flows <= 0:
            raise ConfigError(f"n_flows must be positive: {n_flows}")
        records = [self.generate_record(i) for i in range(n_flows)]
        return NdtDataset(
            records=records,
            description=(f"synthetic NDT population, n={n_flows}, "
                         f"seed={self.rngs.seed}"))
