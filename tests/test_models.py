"""Tests for analytic throughput models, including simulator validation."""

import pytest

from repro.analysis.models import (mathis_throughput, padhye_throughput,
                                   reno_steady_state_loss_rate)
from repro.cca import RenoCca
from repro.errors import AnalysisError
from repro.sim import Simulator, dumbbell
from repro.tcp import Connection
from repro.units import mbps, ms


class TestMathis:
    def test_known_value(self):
        # MSS=1448, RTT=100ms, p=0.01: T = 14480 * 1.2247 / 0.1...
        t = mathis_throughput(1448, 0.1, 0.0001)
        assert t == pytest.approx(1448 / 0.1 * 1.2247 / 0.01, rel=0.01)

    def test_quarter_loss_halves_throughput(self):
        t1 = mathis_throughput(1448, 0.1, 0.001)
        t2 = mathis_throughput(1448, 0.1, 0.004)
        assert t1 / t2 == pytest.approx(2.0)

    def test_scales_inversely_with_rtt(self):
        t1 = mathis_throughput(1448, 0.05, 0.001)
        t2 = mathis_throughput(1448, 0.1, 0.001)
        assert t1 / t2 == pytest.approx(2.0)

    def test_invalid_inputs(self):
        with pytest.raises(AnalysisError):
            mathis_throughput(1448, 0.1, 0.0)
        with pytest.raises(AnalysisError):
            mathis_throughput(0, 0.1, 0.01)


class TestPadhye:
    def test_close_to_mathis_at_low_loss(self):
        mathis = mathis_throughput(1448, 0.1, 1e-4)
        padhye = padhye_throughput(1448, 0.1, 1e-4)
        assert padhye == pytest.approx(mathis, rel=0.15)

    def test_below_mathis_at_high_loss(self):
        # Timeouts make PFTK strictly more pessimistic.
        mathis = mathis_throughput(1448, 0.1, 0.05)
        padhye = padhye_throughput(1448, 0.1, 0.05)
        assert padhye < mathis

    def test_rwnd_clamp(self):
        t = padhye_throughput(1448, 0.1, 1e-5, rwnd_bytes=100_000)
        assert t == pytest.approx(1_000_000)


class TestSawtooth:
    def test_loss_rate_inverse(self):
        p = reno_steady_state_loss_rate(100.0)
        assert p == pytest.approx(1.0 / 3750.0)

    def test_invalid(self):
        with pytest.raises(AnalysisError):
            reno_steady_state_loss_rate(0.0)


class TestSimulatorAgainstMathis:
    @pytest.mark.parametrize("loss_rate", [0.0005, 0.002])
    def test_reno_tracks_mathis_within_2x(self, loss_rate):
        """P4 validation: simulated Reno under random loss lands within
        a factor of ~2 of the Mathis prediction (the model itself is
        only accurate to that order; see Philip et al., IMC '21)."""
        sim = Simulator()
        # High capacity so random loss, not the queue, is binding.
        path = dumbbell(sim, mbps(200), ms(50), loss_rate=loss_rate,
                        seed=3)
        conn = Connection(sim, path, "f", RenoCca())
        conn.sender.set_infinite_backlog()
        sim.run(until=60.0)
        measured = conn.receiver.received_bytes / 60.0
        predicted = mathis_throughput(1448, 0.05, loss_rate)
        assert predicted / 2.2 < measured < predicted * 2.2