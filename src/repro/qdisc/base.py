"""Queue discipline (qdisc) interface.

A qdisc sits at a link's egress.  The link calls :meth:`Qdisc.enqueue`
when a packet arrives and :meth:`Qdisc.dequeue` whenever it is ready to
transmit.  Qdiscs never own the clock; the current time is passed in so
the same object can be unit-tested without a simulator.

Drop and mark counters are maintained uniformly here so experiments can
read loss statistics off any discipline, and every admission, dequeue,
drop, and mark is mirrored onto the :mod:`repro.obs` trace bus (when it
has subscribers) under this qdisc's unique ``obs_name``.
"""

from __future__ import annotations

import abc
import itertools
from typing import Callable, Optional

from typing import TYPE_CHECKING

from ..obs.bus import BUS as _OBS, EventKind

if TYPE_CHECKING:
    from ..sim.packet import Packet

#: metadata shared by every drop-after-enqueue event (allocated once;
#: drops are rare but bursts happen, and the dict is immutable by
#: convention -- subscribers must not mutate event.meta)
_ENQUEUED_DROP_META = {"enqueued": True}

_qdisc_ids = itertools.count(1)


class Qdisc(abc.ABC):
    """Abstract egress queue discipline."""

    def __init__(self):
        self.drops = 0
        self.dropped_bytes = 0
        self.marks = 0
        self.enqueued = 0
        self.dequeued = 0
        self.dequeued_bytes = 0
        #: unique trace-bus source label; stable for this instance
        self.obs_name = f"qdisc:{type(self).__name__.lower()}-{next(_qdisc_ids)}"
        #: Optional observer invoked as ``fn(packet, now)`` on every drop.
        self.on_drop: Optional[Callable[[Packet, float], None]] = None

    @abc.abstractmethod
    def enqueue(self, packet: Packet, now: float) -> bool:
        """Offer ``packet`` to the queue.  Returns False if dropped."""

    @abc.abstractmethod
    def dequeue(self, now: float) -> Optional[Packet]:
        """Remove and return the next packet to transmit, if any."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of packets currently queued."""

    @property
    @abc.abstractmethod
    def byte_length(self) -> int:
        """Bytes currently queued."""

    def next_ready_time(self, now: float) -> Optional[float]:
        """Earliest time a queued packet may become transmittable.

        Rate-gated disciplines (token buckets) can hold packets even
        though the link is idle; they override this so the link knows
        when to poll again.  ``None`` means "whenever a packet arrives".
        """
        return None

    # -- helpers for subclasses -----------------------------------------
    #
    # Subclasses call these at the moment the corresponding thing
    # happens; the helpers keep the uniform counters and emit trace
    # events.  ``_record_drop(..., enqueued=True)`` distinguishes drops
    # of packets that previously occupied the queue (CoDel head drops,
    # longest-queue eviction) from admission refusals -- byte
    # conservation depends on that distinction.

    def _record_drop(self, packet: Packet, now: float,
                     enqueued: bool = False) -> None:
        self.drops += 1
        self.dropped_bytes += packet.size
        if _OBS.enabled:
            _OBS.emit(now, EventKind.DROP, self.obs_name, packet.flow_id,
                      packet.size,
                      _ENQUEUED_DROP_META if enqueued else None)
        if self.on_drop is not None:
            self.on_drop(packet, now)

    def _record_mark(self, packet: Packet, now: float) -> None:
        self.marks += 1
        if _OBS.enabled:
            _OBS.emit(now, EventKind.MARK, self.obs_name, packet.flow_id,
                      packet.size)

    def _record_enqueue(self, packet: Packet, now: float) -> None:
        self.enqueued += 1
        if _OBS.enabled:
            _OBS.emit(now, EventKind.ENQUEUE, self.obs_name,
                      packet.flow_id, packet.size)

    def _record_dequeue(self, packet: Packet, now: float) -> None:
        self.dequeued += 1
        self.dequeued_bytes += packet.size
        if _OBS.enabled:
            _OBS.emit(now, EventKind.DEQUEUE, self.obs_name,
                      packet.flow_id, packet.size)
